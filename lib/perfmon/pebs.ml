type config = { period : int }

let default_config = { period = 19 }

type profile = { misses : Support.Itab.t; mutable num_samples : int }

let create_profile () = { misses = Support.Itab.create 256; num_samples = 0 }

type collector = { period : int; mutable since : int; profile : profile }

let collector_state (config : config) profile =
  { period = config.period; since = 0; profile }

let[@inline] on_dmiss_addr c src =
  c.since <- c.since + 1;
  if c.since >= c.period then begin
    c.since <- 0;
    c.profile.num_samples <- c.profile.num_samples + 1;
    Support.Itab.add c.profile.misses src 1
  end

(* Direct tape drain: only dmiss events matter to PEBS. *)
let consume c (tape : Exec.Event.tape) =
  let tags = tape.Exec.Event.tags and a = tape.Exec.Event.a in
  for i = 0 to tape.Exec.Event.len - 1 do
    if Bytes.unsafe_get tags i = Exec.Event.tag_dmiss then
      on_dmiss_addr c (Array.unsafe_get a i)
  done

let collector config profile =
  let c = collector_state config profile in
  { Exec.Event.null with Exec.Event.on_dmiss = (fun ~src -> on_dmiss_addr c src) }

let total profile = Support.Itab.fold (fun _ c acc -> acc + c) profile.misses 0

let merge a b =
  Support.Itab.iter (fun k v -> Support.Itab.add a.misses k v) b.misses;
  a.num_samples <- a.num_samples + b.num_samples

(* Diagnostics: profile-quality and layout-quality metrics computed
   from hand-built LBR profiles with known, exact answers, plus the
   bench-JSON comparator and the determinism guarantee the committed
   golden baseline relies on. *)

open Testutil

(* A metadata build of a single diamond function; returns the binary
   plus the four placed blocks in id order. *)
let diamond_binary () =
  let program =
    Ir.Program.make ~name:"diamondprog" ~main:"diamond"
      [ Ir.Cunit.make ~name:"u" [ diamond_func () ] ]
  in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let block i = Linker.Binary.block_info_exn binary ~func:"diamond" ~block:i in
  (binary, Array.init 4 block)

let block_end (b : Linker.Binary.block_info) = b.addr + b.size

(* Quality.analyze on a profile with one mapped taken branch (0 -> 1,
   weight 3) and one stale record (weight 1): every ratio is exact. *)
let test_quality_exact () =
  let binary, blocks = diamond_binary () in
  let profile = Perfmon.Lbr.create_profile () in
  (* The branch retires at its end address: src-1 must land in block 0. *)
  Perfmon.Lbr.add_pair profile.Perfmon.Lbr.branches ~src:(block_end blocks.(0))
    ~dst:blocks.(1).addr 3;
  (* A record from a different binary version: both endpoints unmapped. *)
  Perfmon.Lbr.add_pair profile.Perfmon.Lbr.branches ~src:1 ~dst:2 1;
  profile.Perfmon.Lbr.num_samples <- 2;
  profile.Perfmon.Lbr.num_records <- 4;
  let dcfg = Propeller.Dcfg.build ~profile ~binary in
  let q = Diagnostics.Quality.analyze ~dcfg ~profile () in
  check ti "mapped blocks" 4 q.mapped_blocks;
  (* Only the destination block of a taken branch gets a sample count. *)
  check ti "sampled blocks" 1 q.sampled_blocks;
  check tf "block coverage" 0.25 q.block_coverage;
  let total_bytes =
    Array.fold_left (fun acc (b : Linker.Binary.block_info) -> acc + b.size) 0 blocks
  in
  check tf "byte coverage"
    (float_of_int blocks.(1).size /. float_of_int total_bytes)
    q.byte_coverage;
  check tf "func coverage" 1.0 q.func_coverage;
  check ti "mismatch records" 1 q.mismatch_records;
  check tf "mismatch rate" 0.25 q.mismatch_rate;
  (* One sampled block carries 100% of the mass. *)
  check tf "concentration" 1.0 q.concentration_p90;
  check ti "samples" 2 q.total_samples;
  check ti "records" 4 q.total_records;
  check ti "pebs" 0 q.pebs_samples

(* A fully mapped profile has zero mismatch. *)
let test_quality_no_mismatch () =
  let binary, blocks = diamond_binary () in
  let profile = Perfmon.Lbr.create_profile () in
  Perfmon.Lbr.add_pair profile.Perfmon.Lbr.branches ~src:(block_end blocks.(0))
    ~dst:blocks.(2).addr 7;
  let dcfg = Propeller.Dcfg.build ~profile ~binary in
  let q = Diagnostics.Quality.analyze ~dcfg ~profile () in
  check ti "no mismatch" 0 q.mismatch_records;
  check tf "rate" 0.0 q.mismatch_rate

(* Layoutq on a hand-built DCFG. The linked layout of the diamond is
   the fall-through chain 0,2,3 followed by the taken-path block 1 (the
   codegen places the likelier fallthrough successors first), which the
   test first pins down. A sequential range then samples blocks 0 and 2
   (fall-through edge 0->2, weight 5) and a taken branch from block 2
   lands on block 1 (edge 2->1, weight 2) — not adjacent, since block 3
   sits between. Every aggregate is exact, and the Ext-TSP score must
   equal a direct Exttsp.score call on the same dense inputs. *)
let test_layout_exact () =
  let binary, blocks = diamond_binary () in
  (* Pin the layout assumption the arithmetic below relies on. *)
  check ti "block 2 follows block 0" (block_end blocks.(0)) blocks.(2).addr;
  check ti "block 3 follows block 2" (block_end blocks.(2)) blocks.(3).addr;
  check ti "block 1 follows block 3" (block_end blocks.(3)) blocks.(1).addr;
  let profile = Perfmon.Lbr.create_profile () in
  (* Sequential range covering blocks 0 and 2 only (hi is exclusive of
     any block *starting* at it): fall-through edge + both counts. *)
  Perfmon.Lbr.add_pair profile.Perfmon.Lbr.ranges ~src:blocks.(0).addr
    ~dst:(blocks.(2).addr + 1) 5;
  Perfmon.Lbr.add_pair profile.Perfmon.Lbr.branches ~src:(block_end blocks.(2))
    ~dst:blocks.(1).addr 2;
  let dcfg = Propeller.Dcfg.build ~profile ~binary in
  let l = Diagnostics.Layoutq.analyze ~dcfg ~final:binary () in
  check ti "edge weight" 7 l.edge_weight;
  check ti "fall-through weight" 5 l.fall_through_weight;
  check tb "fall-through rate" true (abs_float (l.fall_through_rate -. (5.0 /. 7.0)) < 1e-9);
  check ti "hot funcs scored" 1 l.hot_funcs_scored;
  check ti "blocks missing" 0 l.blocks_missing;
  (* Cross-validate against Exttsp.score: sampled blocks 0,2,1 become
     dense nodes 0,1,2 in address order, with final (relaxed) sizes —
     byte-for-byte the inputs score_func hands to the scorer. *)
  let sizes =
    Array.of_list (List.map (fun i -> blocks.(i).Linker.Binary.size) [ 0; 2; 1 ])
  in
  let edges = [ (0, 1, 5.0); (1, 2, 2.0) ] in
  let p = Layout.Problem.make ~sizes ~weights:(Array.make 3 0.0) ~edges ~entry:0 in
  let expected = Layout.Exttsp.score ~order:[ 0; 1; 2 ] p in
  check tb "exttsp matches direct score" true (abs_float (l.exttsp_score -. expected) < 1e-9);
  check tb "norm consistent" true (abs_float (l.exttsp_norm -. (expected /. 7.0)) < 1e-9);
  (* The fall-through component alone is worth 5.0. *)
  check tb "exttsp >= fall-through mass" true (l.exttsp_score >= 5.0 -. 1e-9);
  (* score_norm agrees with score / total weight on the same inputs. *)
  check tb "score_norm helper" true
    (abs_float (Layout.Exttsp.score_norm ~order:[ 0; 1; 2 ] p -. (expected /. 7.0)) < 1e-9)

(* Same seed => byte-identical diagnostics JSON: the property that makes
   a committed bench/baseline.json safe to diff against in CI. *)
let test_report_deterministic () =
  let run () =
    let spec, program = medium_program () in
    let env = Buildsys.Driver.make_env () in
    let result =
      Propeller.Pipeline.run
        ~config:
          {
            Propeller.Pipeline.default_config with
            profile_run = { Exec.Interp.default_config with requests = spec.requests };
          }
        ~env ~program ~name:spec.name ()
    in
    let report = Diagnostics.Report.analyze ~name:spec.name ~result () in
    Obs.Json.to_string (Diagnostics.Report.to_json report)
  in
  let a = run () and b = run () in
  check ts "byte-identical JSON" a b;
  (* And the JSON round-trips through our own parser. *)
  match Obs.Json.parse a with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON does not re-parse: %s" e

(* --- comparator ---------------------------------------------------- *)

let bench_json ?(schema = 1) ?(drop_coverage = false) ~prop ~cov () =
  let quality =
    if drop_coverage then []
    else [ ("block_coverage", Obs.Json.Float cov) ]
  in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int schema);
      ( "benchmarks",
        Obs.Json.List
          [
            Obs.Json.Obj
              [
                ("name", Obs.Json.String "x");
                ("speedup_pct", Obs.Json.Obj [ ("propeller", Obs.Json.Float prop) ]);
                ( "diagnostics",
                  Obs.Json.Obj [ ("profile_quality", Obs.Json.Obj quality) ] );
              ];
          ] );
      ("summary", Obs.Json.Obj [ ("geomean_speedup_propeller", Obs.Json.Float prop) ]);
    ]

let run_compare ?threshold_pct ~baseline ~current () =
  match Diagnostics.Compare.compare ?threshold_pct ~baseline ~current () with
  | Ok o -> o
  | Error e -> Alcotest.failf "compare errored: %s" e

let test_compare_identical () =
  let j = bench_json ~prop:10.0 ~cov:0.5 () in
  let o = run_compare ~baseline:j ~current:j () in
  check tb "ok" true (Diagnostics.Compare.ok o);
  check ti "verdicts" 3 (List.length o.Diagnostics.Compare.verdicts);
  check ti "regressions" 0 (List.length (Diagnostics.Compare.regressions o))

let test_compare_regression () =
  (* Speedup 10% -> 8%: a -20% move on a Higher-is-better metric, well
     past the 5% default threshold, in both places it appears. *)
  let baseline = bench_json ~prop:10.0 ~cov:0.5 () in
  let current = bench_json ~prop:8.0 ~cov:0.5 () in
  let o = run_compare ~baseline ~current () in
  check tb "not ok" false (Diagnostics.Compare.ok o);
  check ti "regressions" 2 (List.length (Diagnostics.Compare.regressions o));
  (* A generous threshold lets the same delta pass. *)
  let o = run_compare ~threshold_pct:25.0 ~baseline ~current () in
  check tb "ok at 25%" true (Diagnostics.Compare.ok o)

let test_compare_improvement_not_flagged () =
  let baseline = bench_json ~prop:10.0 ~cov:0.5 () in
  let current = bench_json ~prop:14.0 ~cov:0.6 () in
  let o = run_compare ~baseline ~current () in
  check tb "ok" true (Diagnostics.Compare.ok o);
  check tb "improved marked" true
    (List.exists (fun v -> v.Diagnostics.Compare.improved) o.Diagnostics.Compare.verdicts)

let test_compare_missing_metric () =
  let baseline = bench_json ~prop:10.0 ~cov:0.5 () in
  let current = bench_json ~drop_coverage:true ~prop:10.0 ~cov:0.5 () in
  let o = run_compare ~baseline ~current () in
  check tb "not ok" false (Diagnostics.Compare.ok o);
  check ti "missing" 1 (List.length o.Diagnostics.Compare.missing)

let test_compare_schema_guard () =
  let baseline = bench_json ~prop:10.0 ~cov:0.5 () in
  let current = bench_json ~schema:2 ~prop:10.0 ~cov:0.5 () in
  (* Older baseline vs newer current: graceful — judged metrics both
     sides have are still compared, and a NOTE explains the skew. *)
  (match Diagnostics.Compare.compare ~baseline ~current () with
  | Error e -> Alcotest.failf "older baseline must compare gracefully: %s" e
  | Ok o ->
    check tb "ok" true (Diagnostics.Compare.ok o);
    check ti "verdicts still judged" 3 (List.length o.Diagnostics.Compare.verdicts);
    check tb "schema-skew note present" true (o.Diagnostics.Compare.notes <> []));
  (* The reverse direction (newer baseline) is a caller error. *)
  (match Diagnostics.Compare.compare ~baseline:current ~current:baseline () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "newer baseline must error");
  match Diagnostics.Compare.compare ~baseline:Obs.Json.Null ~current:baseline () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object input must error"

let test_compare_schema_gained_key_noted () =
  (* A baseline predating the selfspeed group: the current file's new
     judged metric is reported as a NOTE, not judged and not missing. *)
  let baseline = bench_json ~prop:10.0 ~cov:0.5 () in
  let add_selfspeed json v =
    match json with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (fields
        @ [
            ( "selfspeed",
              Obs.Json.Obj [ ("relinks_per_sec", Obs.Json.Float v) ] );
          ])
    | _ -> assert false
  in
  let current = add_selfspeed (bench_json ~schema:2 ~prop:10.0 ~cov:0.5 ()) 4.2 in
  let contains_sub s sub =
    let ls = String.length s and lb = String.length sub in
    let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
    go 0
  in
  let o = run_compare ~baseline ~current () in
  check tb "ok" true (Diagnostics.Compare.ok o);
  check ti "nothing missing" 0 (List.length o.Diagnostics.Compare.missing);
  check tb "gained key noted" true
    (List.exists
       (fun n -> contains_sub n "relinks_per_sec")
       o.Diagnostics.Compare.notes)

let test_diff_stdout_parseable () =
  (* The `propeller_stat diff` contract: verdict/MISSING lines go to
     stdout, NOTE lines to stderr. On a mixed-schema diff (older
     baseline, current file with a gained judged metric) every stdout
     line must parse as `<mark> <metric> ...` with a fixed mark, and no
     NOTE may leak into the parseable half. *)
  let baseline = bench_json ~prop:10.0 ~cov:0.5 () in
  let current =
    match bench_json ~schema:2 ~prop:8.0 ~cov:0.5 () with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (fields
        @ [ ("selfspeed", Obs.Json.Obj [ ("relinks_per_sec", Obs.Json.Float 4.2) ]) ])
    | _ -> assert false
  in
  let o = run_compare ~baseline ~current () in
  let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let stdout_lines = lines (Diagnostics.Compare.render_verdicts o) in
  check tb "stdout nonempty" true (stdout_lines <> []);
  List.iter
    (fun l ->
      match String.split_on_char ' ' l |> List.filter (fun w -> w <> "") with
      | mark :: metric :: _ ->
        check tb
          (Printf.sprintf "line %S has a fixed mark" l)
          true
          (List.mem mark [ "ok"; "improved"; "REGRESSED"; "MISSING" ]);
        check tb "metric field present" true (String.length metric > 0)
      | _ -> Alcotest.failf "unparseable stdout line: %S" l)
    stdout_lines;
  check tb "no NOTE on stdout" false
    (List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "NOTE") stdout_lines);
  let note_lines = lines (Diagnostics.Compare.render_notes o) in
  check tb "mixed-schema diff produced notes" true (note_lines <> []);
  List.iter
    (fun l ->
      check tb (Printf.sprintf "note %S marked NOTE" l) true
        (String.length l >= 4 && String.sub l 0 4 = "NOTE"))
    note_lines

let test_compare_selfspeed_widened_tolerance () =
  (* selfspeed carries a 10x tolerance_scale: a -30% wall-clock wobble
     passes at the default 5% threshold (effective 50%), while the same
     move on speedup_pct would regress. A -60% collapse still gates. *)
  let with_selfspeed v =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int 5);
        ("selfspeed", Obs.Json.Obj [ ("relinks_per_sec", Obs.Json.Float v) ]);
      ]
  in
  let o = run_compare ~baseline:(with_selfspeed 10.0) ~current:(with_selfspeed 7.0) () in
  check tb "30% wobble tolerated" true (Diagnostics.Compare.ok o);
  let o = run_compare ~baseline:(with_selfspeed 10.0) ~current:(with_selfspeed 4.0) () in
  check tb "60% collapse gated" false (Diagnostics.Compare.ok o)

(* --- Fidelity (ISSUE 8): LBR-vs-sampled gap report ----------------- *)

let fidelity_fixture =
  lazy
    (let spec, program = medium_program () in
     let run () =
       Diagnostics.Fidelity.analyze ~requests:spec.requests
         ~ctx:(Support.Ctx.create ()) ~program ~name:spec.name ()
     in
     (run (), run))

let test_fidelity_bounds () =
  let f, _ = Lazy.force fidelity_fixture in
  check tb "correlation in [-1,1]" true
    (f.Diagnostics.Fidelity.weight_correlation >= -1.0 && f.weight_correlation <= 1.0);
  let rate_ok r = r >= 0.0 && r <= 1.0 in
  check tb "base fall-through in [0,1]" true (rate_ok f.base_fall_through_rate);
  check tb "lbr fall-through in [0,1]" true (rate_ok f.lbr.fall_through_rate);
  check tb "sampled fall-through in [0,1]" true (rate_ok f.sampled.fall_through_rate);
  check tb "cycles positive" true
    (f.base_cycles > 0.0 && f.lbr.po_cycles > 0.0 && f.sampled.po_cycles > 0.0);
  check tb "sides tagged correctly" true
    (f.lbr.source = Perfmon.Source.Lbr && f.sampled.source = Perfmon.Source.Sampled);
  check tb "profiles non-empty" true
    (f.lbr.profile_records > 0 && f.sampled.profile_records > 0);
  (* The gap fields are consistent with the sides they summarize. *)
  check tf "fall-through gap"
    (f.lbr.fall_through_rate -. f.sampled.fall_through_rate)
    f.fall_through_gap;
  check tf "cycle gap"
    ((f.sampled.po_cycles -. f.lbr.po_cycles) /. f.lbr.po_cycles *. 100.0)
    f.cycle_gap_pct

let test_fidelity_json_roundtrip () =
  let f, _ = Lazy.force fidelity_fixture in
  let rendered = Obs.Json.to_string (Diagnostics.Fidelity.to_json f) in
  match Obs.Json.parse rendered with
  | Error e -> Alcotest.fail ("fidelity JSON does not re-parse: " ^ e)
  | Ok v ->
    let num path =
      match Obs.Json.member path v with
      | Some (Obs.Json.Float x) -> x
      | Some (Obs.Json.Int x) -> float_of_int x
      | _ -> Alcotest.fail ("missing numeric field " ^ path)
    in
    check (Alcotest.float 1e-4) "correlation round-trips"
      f.Diagnostics.Fidelity.weight_correlation
      (num "weight_correlation");
    check tb "both sides present" true
      (Obs.Json.member "lbr" v <> None && Obs.Json.member "sampled" v <> None);
    check tb "text report mentions gap" true
      (let t = Diagnostics.Fidelity.to_text f in
       String.length t > 0)

let test_fidelity_deterministic () =
  let f1, run = Lazy.force fidelity_fixture in
  let f2 = run () in
  check ts "fidelity JSON identical across runs"
    (Obs.Json.to_string (Diagnostics.Fidelity.to_json f1))
    (Obs.Json.to_string (Diagnostics.Fidelity.to_json f2))

let suite =
  [
    Alcotest.test_case "quality: exact coverage + mismatch" `Quick test_quality_exact;
    Alcotest.test_case "quality: fresh profile no mismatch" `Quick test_quality_no_mismatch;
    Alcotest.test_case "layout: exact exttsp + fall-through" `Quick test_layout_exact;
    Alcotest.test_case "report: same seed, identical JSON" `Quick test_report_deterministic;
    Alcotest.test_case "compare: identical files ok" `Quick test_compare_identical;
    Alcotest.test_case "compare: regression flagged" `Quick test_compare_regression;
    Alcotest.test_case "compare: improvement passes" `Quick test_compare_improvement_not_flagged;
    Alcotest.test_case "compare: missing metric fails" `Quick test_compare_missing_metric;
    Alcotest.test_case "compare: schema guard" `Quick test_compare_schema_guard;
    Alcotest.test_case "compare: gained key noted" `Quick test_compare_schema_gained_key_noted;
    Alcotest.test_case "compare: diff stdout parseable" `Quick test_diff_stdout_parseable;
    Alcotest.test_case "fidelity: metric bounds" `Quick test_fidelity_bounds;
    Alcotest.test_case "fidelity: JSON round-trip" `Quick test_fidelity_json_roundtrip;
    Alcotest.test_case "fidelity: deterministic" `Quick test_fidelity_deterministic;
    Alcotest.test_case "compare: selfspeed tolerance" `Quick
      test_compare_selfspeed_widened_tolerance;
  ]

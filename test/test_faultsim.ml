open Testutil

(* --- spec strings ------------------------------------------------- *)

let test_spec_roundtrip () =
  let p =
    {
      Faultsim.Plan.seed = 42;
      action_fail = 0.2;
      persist = 0.05;
      straggle = 0.1;
      straggle_factor = 4.0;
      corrupt = 0.15;
      shard_drop = 0.08;
      shards = 32;
      max_attempts = 6;
      backoff_base = 0.25;
      backoff_mult = 3.0;
    }
  in
  match Faultsim.Plan.of_spec (Faultsim.Plan.to_spec p) with
  | Error e -> Alcotest.failf "round-trip rejected: %s" e
  | Ok q -> check tb "round-trips" true (p = q)

let test_spec_defaults () =
  (* Unset keys keep their defaults; only the named key moves. *)
  match Faultsim.Plan.of_spec "seed=7,action=0.3" with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok p ->
    check ti "seed" 7 p.Faultsim.Plan.seed;
    check tb "action" true (Float.equal p.Faultsim.Plan.action_fail 0.3);
    check tb "persist default" true
      (Float.equal p.Faultsim.Plan.persist Faultsim.Plan.default.persist);
    check ti "shards default" Faultsim.Plan.default.shards p.Faultsim.Plan.shards;
    check ti "attempts default" Faultsim.Plan.default.max_attempts
      p.Faultsim.Plan.max_attempts

let test_spec_errors () =
  let rejects s =
    match Faultsim.Plan.of_spec s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S should have been rejected" s
  in
  rejects "action=1.5";
  (* rates live in [0, 1] *)
  rejects "corrupt=-0.1";
  rejects "frobnicate=1";
  (* unknown key *)
  rejects "action=banana";
  (* unparsable value *)
  rejects "action";
  (* missing '=' *)
  rejects "shards=0";
  (* at least one shard *)
  rejects "attempts=0" (* at least one attempt *)

let test_is_active () =
  check tb "default inactive" false (Faultsim.Plan.is_active Faultsim.Plan.default);
  check tb "seed alone inactive" false
    (Faultsim.Plan.is_active { Faultsim.Plan.default with seed = 99 });
  check tb "one positive rate activates" true
    (Faultsim.Plan.is_active { Faultsim.Plan.default with corrupt = 0.01 })

(* --- backoff schedule --------------------------------------------- *)

let test_backoff_schedule () =
  let p = Faultsim.Plan.default in
  (* Defaults: 0.5 s base, doubling — a geometric schedule. *)
  check tf "retry 1" 0.5 (Faultsim.Plan.backoff_seconds p ~retry:1);
  check tf "retry 2" 1.0 (Faultsim.Plan.backoff_seconds p ~retry:2);
  check tf "retry 3" 2.0 (Faultsim.Plan.backoff_seconds p ~retry:3);
  check tf "retry 4" 4.0 (Faultsim.Plan.backoff_seconds p ~retry:4);
  let q = { p with Faultsim.Plan.backoff_base = 0.1; backoff_mult = 3.0 } in
  check tf "custom base" 0.1 (Faultsim.Plan.backoff_seconds q ~retry:1);
  check tf "custom growth" 0.9 (Faultsim.Plan.backoff_seconds q ~retry:3);
  Alcotest.check_raises "retry 0 rejected"
    (Invalid_argument "Plan.backoff_seconds: retry must be >= 1") (fun () ->
      ignore (Faultsim.Plan.backoff_seconds p ~retry:0))

let test_retry_cost () =
  let p = Faultsim.Plan.default in
  check tf "no retries, no cost" 0.0 (Faultsim.Plan.retry_cost p ~attempts:1 ~cpu_seconds:3.0);
  (* attempts=3: two failed 2.0 s runs + backoffs 0.5 and 1.0. *)
  check tf "two retries" 5.5 (Faultsim.Plan.retry_cost p ~attempts:3 ~cpu_seconds:2.0)

(* --- keyed decisions ---------------------------------------------- *)

let keys n = List.init n (Printf.sprintf "unit_%d")

let test_attempts_bounds () =
  let p = { Faultsim.Plan.default with action_fail = 0.5; max_attempts = 4 } in
  List.iter
    (fun key ->
      let a = Faultsim.Plan.attempts_for p ~key in
      if a < 1 || a > 4 then Alcotest.failf "attempts_for %s = %d out of [1,4]" key a)
    (keys 200)

let test_attempts_forced_success () =
  (* Even a certain-failure rate succeeds on the last attempt: the
     link must always complete. *)
  let p = { Faultsim.Plan.default with action_fail = 1.0; max_attempts = 3 } in
  List.iter
    (fun key -> check ti key 3 (Faultsim.Plan.attempts_for p ~key))
    (keys 20);
  let q = { Faultsim.Plan.default with action_fail = 0.0 } in
  List.iter (fun key -> check ti key 1 (Faultsim.Plan.attempts_for q ~key)) (keys 20)

let test_decision_determinism () =
  let p = { Faultsim.Plan.default with action_fail = 0.3; corrupt = 0.3; straggle = 0.3 } in
  List.iter
    (fun key ->
      check tb "attempt replays" (Faultsim.Plan.attempt_fails p ~key ~attempt:1)
        (Faultsim.Plan.attempt_fails p ~key ~attempt:1);
      check tb "corrupt replays" (Faultsim.Plan.corrupts p ~key)
        (Faultsim.Plan.corrupts p ~key);
      check tb "straggle replays" (Faultsim.Plan.straggles p ~key)
        (Faultsim.Plan.straggles p ~key))
    (keys 50)

let test_decision_distribution () =
  (* The keyed hash behaves like a uniform draw: over many keys the
     hit fraction tracks the configured rate. *)
  let p = { Faultsim.Plan.default with corrupt = 0.3 } in
  let hits =
    List.length (List.filter (fun key -> Faultsim.Plan.corrupts p ~key) (keys 2000))
  in
  let frac = float_of_int hits /. 2000.0 in
  if frac < 0.25 || frac > 0.35 then
    Alcotest.failf "corrupt fraction %.3f far from rate 0.3" frac

let test_seed_independence () =
  let p = { Faultsim.Plan.default with action_fail = 0.5 } in
  let q = { p with Faultsim.Plan.seed = p.Faultsim.Plan.seed + 1 } in
  let differs =
    List.exists
      (fun key ->
        Faultsim.Plan.attempt_fails p ~key ~attempt:1
        <> Faultsim.Plan.attempt_fails q ~key ~attempt:1)
      (keys 100)
  in
  check tb "seeds give independent streams" true differs

(* --- shards ------------------------------------------------------- *)

let test_shard_assignment () =
  let p = { Faultsim.Plan.default with shard_drop = 0.25; shards = 16 } in
  List.iter
    (fun key ->
      let s = Faultsim.Plan.shard_of p ~key in
      if s < 0 || s >= 16 then Alcotest.failf "shard_of %s = %d out of [0,16)" key s;
      check ti "shard replays" s (Faultsim.Plan.shard_of p ~key))
    (keys 100)

let test_dropped_shards () =
  let p = { Faultsim.Plan.default with shard_drop = 0.3; shards = 16 } in
  let dropped = Faultsim.Plan.dropped_shards p in
  check tb "ascending" true (List.sort compare dropped = dropped);
  List.iter
    (fun s ->
      check tb
        (Printf.sprintf "shard %d listing matches predicate" s)
        (List.mem s dropped)
        (Faultsim.Plan.shard_dropped p ~shard:s))
    (List.init 16 Fun.id);
  let clean = { p with Faultsim.Plan.shard_drop = 0.0 } in
  check ti "no drops at rate 0" 0 (List.length (Faultsim.Plan.dropped_shards clean))

let suite =
  [
    Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec defaults" `Quick test_spec_defaults;
    Alcotest.test_case "spec errors" `Quick test_spec_errors;
    Alcotest.test_case "is_active" `Quick test_is_active;
    Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "retry cost" `Quick test_retry_cost;
    Alcotest.test_case "attempts bounds" `Quick test_attempts_bounds;
    Alcotest.test_case "forced last-attempt success" `Quick test_attempts_forced_success;
    Alcotest.test_case "decision determinism" `Quick test_decision_determinism;
    Alcotest.test_case "decision distribution" `Quick test_decision_distribution;
    Alcotest.test_case "seed independence" `Quick test_seed_independence;
    Alcotest.test_case "shard assignment" `Quick test_shard_assignment;
    Alcotest.test_case "dropped shards" `Quick test_dropped_shards;
  ]

open Testutil

(* --- Rng --------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Support.Rng.create 42L and b = Support.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Support.Rng.next a) (Support.Rng.next b)
  done

let test_rng_split_independent () =
  let parent = Support.Rng.create 42L in
  let c1 = Support.Rng.split parent 1 and c2 = Support.Rng.split parent 2 in
  check tb "children differ" true (Support.Rng.next c1 <> Support.Rng.next c2);
  (* Splitting must not advance the parent. *)
  let fresh = Support.Rng.create 42L in
  check Alcotest.int64 "parent unperturbed" (Support.Rng.next fresh) (Support.Rng.next parent)

let test_rng_int_range () =
  let rng = Support.Rng.create 1L in
  for _ = 1 to 10_000 do
    let v = Support.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Support.Rng.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Support.Rng.int rng 0))

let test_rng_float_range () =
  let rng = Support.Rng.create 2L in
  for _ = 1 to 10_000 do
    let v = Support.Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "out of range: %f" v
  done

let test_rng_bool_bias () =
  let rng = Support.Rng.create 3L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Support.Rng.bool rng 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check tb "rate near 0.25" true (rate > 0.22 && rate < 0.28)

let test_rng_geometric_mean () =
  let rng = Support.Rng.create 4L in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Support.Rng.geometric rng 0.25
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* Expected mean of a geometric with p = 0.25 is 4. *)
  check tb "mean near 4" true (mean > 3.6 && mean < 4.4)

let test_hash_choice_stateless () =
  check tb "same keys same answer" true
    (Support.Rng.hash_choice 5 9 0.5 = Support.Rng.hash_choice 5 9 0.5);
  let hits = ref 0 in
  for k = 1 to 10_000 do
    if Support.Rng.hash_choice 77 k 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  check tb "bias respected" true (rate > 0.27 && rate < 0.33)

let shuffle_permutation_law =
  QCheck.Test.make ~count:200 ~name:"shuffle is a permutation"
    QCheck.(list small_int)
    (fun xs ->
      let arr = Array.of_list xs in
      let rng = Support.Rng.create 11L in
      Support.Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* --- Pqueue ------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Support.Pqueue.create () in
  List.iter (fun (p, v) -> ignore (Support.Pqueue.add q ~priority:p v))
    [ (1.0, "a"); (5.0, "b"); (3.0, "c"); (4.0, "d"); (2.0, "e") ];
  let order = ref [] in
  let rec drain () =
    match Support.Pqueue.pop_max q with
    | Some (v, _) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "descending priority" [ "b"; "d"; "c"; "e"; "a" ]
    (List.rev !order)

let test_pqueue_ties_fifo () =
  let q = Support.Pqueue.create () in
  ignore (Support.Pqueue.add q ~priority:1.0 "first");
  ignore (Support.Pqueue.add q ~priority:1.0 "second");
  (match Support.Pqueue.pop_max q with
  | Some (v, _) -> check ts "insertion order breaks ties" "first" v
  | None -> Alcotest.fail "empty")

let test_pqueue_update () =
  let q = Support.Pqueue.create () in
  let h = Support.Pqueue.add q ~priority:1.0 "low" in
  ignore (Support.Pqueue.add q ~priority:5.0 "high");
  Support.Pqueue.update q h ~priority:10.0;
  (match Support.Pqueue.pop_max q with
  | Some (v, p) ->
    check ts "updated wins" "low" v;
    check tf "priority" 10.0 p
  | None -> Alcotest.fail "empty")

let test_pqueue_remove () =
  let q = Support.Pqueue.create () in
  let h = Support.Pqueue.add q ~priority:9.0 "gone" in
  ignore (Support.Pqueue.add q ~priority:1.0 "stays");
  Support.Pqueue.remove q h;
  check tb "handle dead" false (Support.Pqueue.mem q h);
  (match Support.Pqueue.pop_max q with
  | Some (v, _) -> check ts "survivor" "stays" v
  | None -> Alcotest.fail "empty");
  Alcotest.check_raises "double remove" (Invalid_argument "Pqueue.remove: dead handle")
    (fun () -> Support.Pqueue.remove q h)

let pqueue_sorted_law =
  QCheck.Test.make ~count:200 ~name:"pqueue drains sorted"
    QCheck.(list (pair (float_range (-100.) 100.) small_int))
    (fun items ->
      let q = Support.Pqueue.create () in
      List.iter (fun (p, v) -> ignore (Support.Pqueue.add q ~priority:p v)) items;
      let rec drain acc =
        match Support.Pqueue.pop_max q with
        | Some (_, p) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let prios = drain [] in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a >= b && sorted rest
        | [ _ ] | [] -> true
      in
      sorted prios && List.length prios = List.length items)

let pqueue_update_law =
  QCheck.Test.make ~count:200 ~name:"pqueue respects updates"
    QCheck.(list (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun items ->
      let q = Support.Pqueue.create () in
      let handles = List.map (fun (p, _) -> Support.Pqueue.add q ~priority:p ()) items in
      List.iter2 (fun h (_, p') -> Support.Pqueue.update q h ~priority:p') handles items;
      let rec drain acc =
        match Support.Pqueue.pop_max q with Some (_, p) -> drain (p :: acc) | None -> acc
      in
      let got = List.sort compare (drain []) in
      let want = List.sort compare (List.map snd items) in
      got = want)

(* --- Digesting / Stats ------------------------------------------- *)

let test_digest_stable () =
  let a = Support.Digesting.of_string "hello" in
  let b = Support.Digesting.of_string "hello" in
  check tb "equal digests" true (Support.Digesting.equal a b);
  check ts "hex stable" (Support.Digesting.to_hex a) (Support.Digesting.to_hex b)

let test_digest_distinct () =
  let a = Support.Digesting.of_string "hello" in
  let b = Support.Digesting.of_string "hellp" in
  check tb "different content different digest" false (Support.Digesting.equal a b)

let test_digest_concat_order () =
  let a = Support.Digesting.of_string "a" and b = Support.Digesting.of_string "b" in
  check tb "order matters" false
    (Support.Digesting.equal (Support.Digesting.concat [ a; b ]) (Support.Digesting.concat [ b; a ]))

(* Int64 reference for the FNV-1a streams in Support.Digesting. The
   production loop runs in 32-bit halves on native ints (the boxed
   Int64 version dominated warm-relink allocation); digest hex feeds
   cache keys and fault plans, so it must stay bit-identical to this
   original formulation. *)
let fnv64_ref ~offset s =
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let digest_hex_ref s =
  Printf.sprintf "%016Lx%016Lx"
    (fnv64_ref ~offset:0xCBF29CE484222325L s)
    (fnv64_ref ~offset:0x84222325CBF29CE4L (s ^ "\x01"))

let test_digest_int64_reference () =
  let cases = ref [ ""; "a"; "abc"; "layout-v1|main|fw=1024"; String.make 5000 '\xff' ] in
  for i = 0 to 60 do
    cases :=
      String.init (i * 7 mod 300) (fun j -> Char.chr ((i * 31 + j * 17) mod 256)) :: !cases
  done;
  List.iter
    (fun s ->
      check ts "hex matches Int64 FNV-1a reference" (digest_hex_ref s)
        (Support.Digesting.to_hex (Support.Digesting.of_string s)))
    !cases

let digest_reference_law =
  QCheck.Test.make ~count:500 ~name:"digesting: 32-bit-half FNV == Int64 FNV-1a"
    QCheck.(string_of_size Gen.(0 -- 512))
    (fun s ->
      String.equal (digest_hex_ref s)
        (Support.Digesting.to_hex (Support.Digesting.of_string s)))

let test_stats () =
  check tf "mean" 2.0 (Support.Stats.mean [ 1.0; 2.0; 3.0 ]);
  check tf "sum" 6.0 (Support.Stats.sum [ 1.0; 2.0; 3.0 ]);
  check tf "ratio" 50.0 (Support.Stats.ratio_pct 3.0 2.0);
  check tf "p50" 2.0 (Support.Stats.percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  check tb "geomean" true (abs_float (Support.Stats.geomean [ 1.0; 4.0 ] -. 2.0) < 1e-9)

let test_stats_geomean () =
  check tf "empty" 0.0 (Support.Stats.geomean []);
  check tf "singleton" 3.0 (Support.Stats.geomean [ 3.0 ]);
  check tb "known" true (abs_float (Support.Stats.geomean [ 2.0; 8.0 ] -. 4.0) < 1e-9);
  check tb "three-way" true (abs_float (Support.Stats.geomean [ 1.0; 10.0; 100.0 ] -. 10.0) < 1e-9);
  (* A zero (or negative) factor collapses the product: geomean is 0. *)
  check tf "zero element" 0.0 (Support.Stats.geomean [ 0.0; 4.0; 9.0 ]);
  check tf "negative element" 0.0 (Support.Stats.geomean [ -2.0; 4.0 ]);
  (* Scale equivariance: geomean (k*xs) = k * geomean xs. *)
  check tb "scale equivariant" true
    (abs_float
       (Support.Stats.geomean [ 3.0; 12.0 ] -. (3.0 *. Support.Stats.geomean [ 1.0; 4.0 ]))
    < 1e-9)

let test_stats_stddev () =
  check tf "empty" 0.0 (Support.Stats.stddev []);
  check tf "constant" 0.0 (Support.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  (* Population stddev of {2,4,4,4,5,5,7,9} is exactly 2. *)
  check tf "known" 2.0 (Support.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]);
  check tb "shift invariant" true
    (abs_float
       (Support.Stats.stddev [ 1.0; 2.0; 3.0 ]
       -. Support.Stats.stddev [ 101.0; 102.0; 103.0 ])
    < 1e-9)

let test_stats_median () =
  check tf "empty" 0.0 (Support.Stats.median []);
  check tf "singleton" 7.0 (Support.Stats.median [ 7.0 ]);
  check tf "odd unsorted" 2.0 (Support.Stats.median [ 3.0; 1.0; 2.0 ]);
  check tf "even midpoint" 2.5 (Support.Stats.median [ 4.0; 1.0; 3.0; 2.0 ]);
  (* Median is robust to one huge outlier; mean is not. *)
  check tf "outlier robust" 2.0 (Support.Stats.median [ 1.0; 2.0; 1.0e9 ])

(* --- Packed keys (ISSUE 9) ---------------------------------------- *)

(* The packed key must round-trip every address pair up to the maximum
   text-segment size, and its natural int order must agree with the
   lexicographic pair order the tuple keys had. *)
let packed_roundtrip_law =
  QCheck.Test.make ~count:1000 ~name:"packed (src, dst) key round-trips"
    QCheck.(
      pair (int_range 0 Support.Packed.max_addr) (int_range 0 Support.Packed.max_addr))
    (fun (src, dst) ->
      let key = Support.Packed.pack ~src ~dst in
      key >= 0 && Support.Packed.src key = src && Support.Packed.dst key = dst)

let packed_order_law =
  QCheck.Test.make ~count:1000 ~name:"packed key order = lexicographic pair order"
    QCheck.(
      quad
        (int_range 0 Support.Packed.max_addr)
        (int_range 0 Support.Packed.max_addr)
        (int_range 0 Support.Packed.max_addr)
        (int_range 0 Support.Packed.max_addr))
    (fun (s1, d1, s2, d2) ->
      compare (Support.Packed.pack ~src:s1 ~dst:d1) (Support.Packed.pack ~src:s2 ~dst:d2)
      = compare (s1, d1) (s2, d2))

let test_packed_bounds () =
  check ti "max_addr round-trips" Support.Packed.max_addr
    (Support.Packed.src
       (Support.Packed.pack ~src:Support.Packed.max_addr ~dst:Support.Packed.max_addr));
  let rejects name f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  rejects "negative src" (fun () -> Support.Packed.pack ~src:(-1) ~dst:0);
  rejects "oversized dst" (fun () ->
      Support.Packed.pack ~src:0 ~dst:(Support.Packed.max_addr + 1))

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng: int rejects <=0" `Quick test_rng_int_rejects_nonpositive;
    Alcotest.test_case "rng: float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng: bool bias" `Quick test_rng_bool_bias;
    Alcotest.test_case "rng: geometric mean" `Quick test_rng_geometric_mean;
    Alcotest.test_case "rng: hash_choice stateless" `Quick test_hash_choice_stateless;
    Alcotest.test_case "pqueue: pop order" `Quick test_pqueue_order;
    Alcotest.test_case "pqueue: fifo ties" `Quick test_pqueue_ties_fifo;
    Alcotest.test_case "pqueue: update" `Quick test_pqueue_update;
    Alcotest.test_case "pqueue: remove" `Quick test_pqueue_remove;
    QCheck_alcotest.to_alcotest pqueue_sorted_law;
    QCheck_alcotest.to_alcotest shuffle_permutation_law;
    QCheck_alcotest.to_alcotest pqueue_update_law;
    Alcotest.test_case "digest: stable" `Quick test_digest_stable;
    Alcotest.test_case "digest: distinct" `Quick test_digest_distinct;
    Alcotest.test_case "digest: concat order" `Quick test_digest_concat_order;
    Alcotest.test_case "digest: Int64 reference identity" `Quick test_digest_int64_reference;
    QCheck_alcotest.to_alcotest digest_reference_law;
    Alcotest.test_case "stats: basics" `Quick test_stats;
    Alcotest.test_case "stats: geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats: stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats: median" `Quick test_stats_median;
    Alcotest.test_case "packed: bounds" `Quick test_packed_bounds;
    QCheck_alcotest.to_alcotest packed_roundtrip_law;
    QCheck_alcotest.to_alcotest packed_order_law;
  ]

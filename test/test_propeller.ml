open Testutil

(* Shared mid-sized pipeline run (built once; tests read from it). *)
let fixture =
  lazy
    (let spec, program = medium_program () in
     let env = Buildsys.Driver.make_env () in
     let result =
       Propeller.Pipeline.run
         ~config:
           {
             Propeller.Pipeline.default_config with
             profile_run = { Exec.Interp.default_config with requests = spec.requests };
           }
         ~env ~program ~name:"testprog" ()
     in
     (spec, program, env, result))

(* --- Dcfg --------------------------------------------------------- *)

let test_dcfg_requires_metadata () =
  let program = call_program () in
  let _, { Linker.Link.binary; _ } = compile_and_link program in
  let profile = Perfmon.Lbr.create_profile () in
  try
    ignore (Propeller.Dcfg.build ~profile ~binary);
    Alcotest.fail "expected rejection of metadata-less binary"
  with Invalid_argument _ -> ()

let test_dcfg_reconstruction () =
  (* Execute a loop and check the DCFG recovers its back edge. *)
  let f = loop_func ~name:"main" () in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, profile = run_with_profile ~requests:400 program binary in
  let dcfg = Propeller.Dcfg.build ~profile ~binary in
  match Hashtbl.find_opt dcfg.funcs "main" with
  | None -> Alcotest.fail "main not in DCFG"
  | Some d ->
    let back_key = Support.Packed.pack ~src:1 ~dst:1 in
    check tb "back edge recovered" true (Support.Itab.mem d.dedges back_key);
    check tb "back edge dominant" true
      (let back = Support.Itab.find d.dedges back_key in
       Support.Itab.fold (fun _ r acc -> acc && r <= back) d.dedges true);
    check tb "samples attributed" true (d.dsamples > 0)

let test_dcfg_block_mapping () =
  let _, program, _, result = Lazy.force (fixture) in
  ignore program;
  let binary = result.metadata_build.binary in
  let dcfg = Propeller.Dcfg.build ~profile:result.profile ~binary in
  (* Every sampled block must map back to a real program block. *)
  Hashtbl.iter
    (fun fname (d : Propeller.Dcfg.dfunc) ->
      match Ir.Program.find_func program fname with
      | None -> Alcotest.failf "unknown function in DCFG: %s" fname
      | Some f ->
        Hashtbl.iter
          (fun bb _ ->
            if bb < 0 || bb >= Ir.Func.num_blocks f then
              Alcotest.failf "bogus block %s#%d" fname bb)
          d.dblocks)
    dcfg.funcs

let test_dcfg_call_arcs () =
  let program = call_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, profile = run_with_profile ~requests:100 program binary in
  let dcfg = Propeller.Dcfg.build ~profile ~binary in
  let arcs = Propeller.Dcfg.func_arcs dcfg in
  check tb "main->callee arc seen" true
    (List.exists (fun (a, b, w) -> a = "main" && b = "callee" && w > 0.0) arcs)

let test_dcfg_disasm_view_agrees () =
  let _, program, _, result = Lazy.force (fixture) in
  ignore program;
  let binary = result.metadata_build.binary in
  let via_map = Propeller.Dcfg.build ~profile:result.profile ~binary in
  let via_blocks = Propeller.Dcfg.build_of_blocks ~profile:result.profile ~binary in
  (* Metadata covers exactly what disassembly would recover. *)
  check ti "same sampled blocks" (Propeller.Dcfg.num_blocks via_map)
    (Propeller.Dcfg.num_blocks via_blocks);
  check ti "same edges" (Propeller.Dcfg.num_edges via_map) (Propeller.Dcfg.num_edges via_blocks)

(* --- WPA ---------------------------------------------------------- *)

let test_wpa_plans_valid () =
  let _, program, _, result = Lazy.force (fixture) in
  List.iter
    (fun (p : Codegen.Directive.func_plan) ->
      match Ir.Program.find_func program p.func with
      | None -> Alcotest.failf "plan for unknown function %s" p.func
      | Some f -> (
        match Codegen.Directive.validate ~num_blocks:(Ir.Func.num_blocks f) p with
        | Ok () -> ()
        | Error e -> Alcotest.fail e))
    result.wpa.plans

let test_wpa_ordering_covers_primaries () =
  let _, _, _, result = Lazy.force (fixture) in
  List.iter
    (fun (p : Codegen.Directive.func_plan) ->
      check tb "primary listed" true (List.mem p.func result.wpa.ordering))
    result.wpa.plans;
  (* Cold symbols trail the hot primaries. *)
  let first_cold = List.find_index Objfile.Symname.is_cold result.wpa.ordering in
  let last_hot =
    List.mapi (fun i s -> (i, s)) result.wpa.ordering
    |> List.filter (fun (_, s) -> not (Objfile.Symname.is_cold s))
    |> List.fold_left (fun acc (i, _) -> max acc i) (-1)
  in
  match first_cold with
  | Some fc -> check tb "cold after hot" true (fc > last_hot)
  | None -> ()

let test_wpa_interproc_plans_valid () =
  let _, program, _, result = Lazy.force (fixture) in
  let wpa =
    Propeller.Wpa.analyze
      ~config:{ Propeller.Wpa.default_config with mode = Propeller.Wpa.Interproc }
      ~profile:(Propeller.Wpa.Lbr result.profile) ~binary:result.metadata_build.binary ()
  in
  check tb "produced plans" true (wpa.plans <> []);
  List.iter
    (fun (p : Codegen.Directive.func_plan) ->
      let f = Ir.Program.find_func_exn program p.func in
      match Codegen.Directive.validate ~num_blocks:(Ir.Func.num_blocks f) p with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    wpa.plans;
  (* Interproc mode may split functions into >2 clusters. *)
  let max_clusters =
    List.fold_left
      (fun acc (p : Codegen.Directive.func_plan) -> max acc (List.length p.clusters))
      0 wpa.plans
  in
  check tb "some function split across clusters" true (max_clusters >= 2)

let test_wpa_split_functions_off () =
  let _, _, _, result = Lazy.force (fixture) in
  let wpa =
    Propeller.Wpa.analyze
      ~config:{ Propeller.Wpa.default_config with split_functions = false }
      ~profile:(Propeller.Wpa.Lbr result.profile) ~binary:result.metadata_build.binary ()
  in
  check tb "no cold symbols in ordering" true
    (not (List.exists Objfile.Symname.is_cold wpa.ordering))

let test_wpa_block_layout_hot_first () =
  let f = loop_func ~name:"main" () in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, profile = run_with_profile ~requests:300 program binary in
  let dcfg = Propeller.Dcfg.build ~profile ~binary in
  let d = Hashtbl.find dcfg.funcs "main" in
  let { Propeller.Wpa.blocks = order; score; policy } = Propeller.Wpa.block_layout dcfg d in
  check ts "default policy reported" "exttsp" policy;
  check tb "entry first" true (List.hd order = 0);
  check tb "positive score" true (score > 0.0);
  check tb "loop body adjacent to entry" true
    (match order with 0 :: 1 :: _ -> true | _ -> false)

(* --- Pipeline ------------------------------------------------------ *)

let test_pipeline_reuses_cold_objects () =
  let _, _, _, result = Lazy.force (fixture) in
  check tb "some objects hot" true (result.hot_objects > 0);
  check tb "most objects cached" true (result.hot_objects < result.total_objects);
  check ti "phase 4 recompiles only hot objects" result.hot_objects
    result.optimized_build.cache_misses

let test_pipeline_po_binary_shape () =
  let _, _, _, result = Lazy.force (fixture) in
  let po = Propeller.Pipeline.optimized_binary result in
  let pm = result.metadata_build.binary in
  check ti "metadata dropped from PO" 0 (Linker.Binary.size_of_kind po Objfile.Section.Bb_addr_map);
  check tb "PM carries metadata" true
    (Linker.Binary.size_of_kind pm Objfile.Section.Bb_addr_map > 0);
  check tb "PO has cold symbols" true
    (Hashtbl.fold (fun s _ acc -> acc || Objfile.Symname.is_cold s) po.symbols false)

let test_pipeline_improves_performance () =
  let spec, program, env, result = Lazy.force (fixture) in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"testprog.base" in
  let cycles binary =
    let image = Exec.Image.build program binary in
    let core = Uarch.Core.create Uarch.Core.default_config in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image
        { Exec.Interp.default_config with requests = spec.requests }
        (Uarch.Core.sink core)
    in
    Uarch.Core.cycles core
  in
  let b = cycles base.binary and p = cycles (Propeller.Pipeline.optimized_binary result) in
  check tb "propeller does not regress the cycle model" true (p <= b *. 1.005)

let test_pipeline_phase_times () =
  let _, _, _, result = Lazy.force (fixture) in
  (* Wall time (makespan) is bounded by the longest unit either way; the
     robust claim is about total compute: Phase 4 re-runs only the hot
     backends. *)
  check tb "phase 4 uses less total compute than phase 2" true
    (result.optimized_build.codegen_report.cpu_seconds
    < result.metadata_build.codegen_report.cpu_seconds);
  check tb "conversion time positive" true (result.times.conversion_s > 0.0)

let test_run_rounds () =
  let spec, program = medium_program ~seed:31L () in
  let env = Buildsys.Driver.make_env () in
  let rounds =
    Propeller.Pipeline.run_rounds ~rounds:2
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests = spec.requests };
        }
      ~env ~program ~name:"rr" ()
  in
  check ti "two rounds" 2 (List.length rounds);
  let r1 = List.nth rounds 0 and r2 = List.nth rounds 1 in
  (* Round 2's metadata binary already uses round 1's layout: its hot
     primaries lead its text. *)
  check tb "round 2 profiled an optimized layout" true
    (r2.metadata_build.binary.Linker.Binary.uid
    <> r1.metadata_build.binary.Linker.Binary.uid);
  List.iter
    (fun (r : Propeller.Pipeline.result) ->
      List.iter
        (fun (p : Codegen.Directive.func_plan) ->
          let f = Ir.Program.find_func_exn program p.func in
          match Codegen.Directive.validate ~num_blocks:(Ir.Func.num_blocks f) p with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
        r.wpa.plans)
    rounds;
  (* Round 2 must not regress round 1 on the cycle model. *)
  let cycles (r : Propeller.Pipeline.result) =
    let image = Exec.Image.build program (Propeller.Pipeline.optimized_binary r) in
    let core = Uarch.Core.create Uarch.Core.default_config in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image
        { Exec.Interp.default_config with requests = spec.requests }
        (Uarch.Core.sink core)
    in
    Uarch.Core.cycles core
  in
  check tb "round 2 at least as good" true (cycles r2 <= cycles r1 *. 1.01)

(* --- Incremental relink cache -------------------------------------- *)

let test_incremental_layout_cache () =
  let _, program = medium_program ~seed:23L () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, profile = run_with_profile ~requests:40 program binary in
  let cache = Buildsys.Cache.create () in
  let analyze () =
    Propeller.Wpa.analyze ~layout_cache:cache ~profile:(Propeller.Wpa.Lbr profile) ~binary ()
  in
  let cold = analyze () in
  check ti "cold run misses every hot function" cold.hot_funcs cold.layout_cache_misses;
  check ti "cold run has no hits" 0 cold.layout_cache_hits;
  let warm = analyze () in
  check ti "warm run all hits" warm.hot_funcs warm.layout_cache_hits;
  check ti "warm run no misses" 0 warm.layout_cache_misses;
  check tb "warm plans identical" true (warm.plans = cold.plans);
  check tb "warm ordering identical" true (warm.ordering = cold.ordering);
  check tb "warm score identical" true (warm.layout_score = cold.layout_score);
  (* Perturb exactly one function's profile: find a branch whose source
     and destination both land in the same hot function and bump its
     count. Only that function's layout key may change. *)
  let hot_names =
    List.map (fun (p : Codegen.Directive.func_plan) -> p.func) cold.plans
  in
  let owner addr =
    match Linker.Binary.find_block_by_addr binary addr with
    | Some b -> Some b.Linker.Binary.func
    | None -> None
  in
  let victim_branch =
    Support.Itab.fold
      (fun key _ acc ->
        match acc with
        | Some _ -> acc
        | None -> (
          let s = Support.Packed.src key and d = Support.Packed.dst key in
          match owner s, owner d with
          | Some fs, Some fd when String.equal fs fd && List.mem fs hot_names ->
            Some (s, d, fs)
          | _ -> None))
      profile.Perfmon.Lbr.branches None
  in
  let s, d, victim = Option.get victim_branch in
  Perfmon.Lbr.add_pair profile.branches ~src:s ~dst:d 1000;
  let dirty = analyze () in
  check ti "same hot set" cold.hot_funcs dirty.hot_funcs;
  check ti "exactly the dirtied function misses" 1 dirty.layout_cache_misses;
  check ti "everything else hits" (cold.hot_funcs - 1) dirty.layout_cache_hits;
  check tb "victim still planned" true
    (List.exists (fun (p : Codegen.Directive.func_plan) -> String.equal p.func victim) dirty.plans);
  (* Warm incremental relink = cold full relink, byte for byte. *)
  let build env name (wpa : Propeller.Wpa.result) =
    Buildsys.Driver.build env ~name ~program
      ~codegen_options:{ Codegen.default_options with emit_bb_addr_map = true; plans = wpa.plans }
      ~link_options:{ Linker.Link.default_options with ordering = Some wpa.ordering }
  in
  let warm_env = Buildsys.Driver.make_env () in
  ignore (build warm_env "inc.v1" warm);
  let incr_b = build warm_env "inc.v2" dirty in
  check tb "incremental relink reuses cached objects" true (incr_b.cache_hits > 0);
  let cold_b = build (Buildsys.Driver.make_env ()) "inc.v2" dirty in
  check tb "incremental image = cold relink image" true
    (Support.Digesting.equal
       (Linker.Binary.image_digest incr_b.binary)
       (Linker.Binary.image_digest cold_b.binary))

(* --- Sampled profile source (ISSUE 8) ----------------------------- *)

(* One shared Sampled-source run on the same mid-sized program. *)
let sampled_fixture =
  lazy
    (let spec, program = medium_program () in
     let run () =
       let env = Buildsys.Driver.make_env () in
       Propeller.Pipeline.run
         ~config:
           {
             Propeller.Pipeline.default_config with
             profile_run = { Exec.Interp.default_config with requests = spec.requests };
             profile_source = Perfmon.Source.Sampled;
           }
         ~env ~program ~name:"sampledprog" ()
     in
     (spec, program, run))

let test_sampled_pipeline_shape () =
  let _, _, run = Lazy.force sampled_fixture in
  let r = run () in
  check tb "source is Sampled" true (r.Propeller.Pipeline.source = Perfmon.Source.Sampled);
  (match r.samples with
  | Some s -> check tb "raw samples kept" true (s.Perfmon.Sampler.num_samples > 0)
  | None -> Alcotest.fail "sampled run must expose raw samples");
  check tb "synthesis produced records" true (r.profile.Perfmon.Lbr.num_records > 0);
  (* The synthesized profile carries no branch-direction fidelity bits. *)
  check ti "no mispredict table" 0 (Support.Itab.length r.profile.Perfmon.Lbr.mispredicts);
  Support.Itab.iter
    (fun _ w -> check tb "branch weight positive" true (w > 0))
    r.profile.Perfmon.Lbr.branches;
  Support.Itab.iter
    (fun _ w -> check tb "range weight positive" true (w > 0))
    r.profile.Perfmon.Lbr.ranges

let test_sampled_pipeline_deterministic () =
  let _, _, run = Lazy.force sampled_fixture in
  let d1 = Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary (run ())) in
  let d2 = Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary (run ())) in
  check tb "sampled relink byte-identical across runs" true (Support.Digesting.equal d1 d2)

let test_sampled_jobs_invariance () =
  let spec, program, _ = Lazy.force sampled_fixture in
  let run jobs =
    Support.Pool.with_pool ~jobs (fun pool ->
        let env =
          Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~pool ()) ()
        in
        let r =
          Propeller.Pipeline.run
            ~config:
              {
                Propeller.Pipeline.default_config with
                profile_run = { Exec.Interp.default_config with requests = spec.requests };
                profile_source = Perfmon.Source.Sampled;
              }
            ~env ~program ~name:"sampledprog" ()
        in
        Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary r))
  in
  check tb "sampled digest identical for jobs 1/4" true
    (Support.Digesting.equal (run 1) (run 4))

(* --- layout policies (ISSUE 10) ----------------------------------- *)

(* Non-default policies must stay deterministic through the full relink:
   the same seed and program give a byte-identical image at any
   parallelism, for every registered policy. The stochastic policies
   (hillclimb, local-search) are the interesting cases — their RNG must
   be derived from the policy seed, never from worker identity. *)
let test_policy_jobs_invariance () =
  let spec, program = medium_program () in
  let digest policy jobs =
    Support.Pool.with_pool ~jobs (fun pool ->
        let env = Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~pool ()) () in
        let r =
          Propeller.Pipeline.run
            ~config:
              {
                Propeller.Pipeline.default_config with
                profile_run = { Exec.Interp.default_config with requests = spec.requests };
                wpa = { Propeller.Wpa.default_config with layout_policy = policy };
              }
            ~env ~program ~name:("pol." ^ policy) ()
        in
        Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary r))
  in
  List.iter
    (fun policy ->
      check tb (policy ^ " digest identical for jobs 1/4") true
        (Support.Digesting.equal (digest policy 1) (digest policy 4)))
    [ "greedy"; "hillclimb"; "local-search" ]

let test_policy_unknown_rejected () =
  let _, _, _, result = Lazy.force (fixture) in
  try
    ignore
      (Propeller.Wpa.analyze
         ~config:{ Propeller.Wpa.default_config with layout_policy = "nope" }
         ~profile:(Propeller.Wpa.Lbr result.profile) ~binary:result.metadata_build.binary ());
    Alcotest.fail "expected rejection of unknown layout policy"
  with Invalid_argument msg ->
    check tb "error names the registry" true
      (String.length msg > 0 && String.exists (fun c -> c = 'e') msg)

let test_autofdo_synthesis_sane () =
  let _, program, run = Lazy.force sampled_fixture in
  let r = run () in
  let binary = r.Propeller.Pipeline.metadata_build.Buildsys.Driver.binary in
  let samples = Option.get r.samples in
  let p = Propeller.Autofdo.synthesize ~samples ~program ~binary () in
  (* num_records equals the total emitted weight mass. *)
  let mass =
    Support.Itab.fold (fun _ w acc -> acc + w) p.Perfmon.Lbr.branches 0
    + Support.Itab.fold (fun _ w acc -> acc + w) p.Perfmon.Lbr.ranges 0
  in
  check ti "num_records = emitted mass" mass p.Perfmon.Lbr.num_records;
  check ti "num_samples preserved" samples.Perfmon.Sampler.num_samples
    p.Perfmon.Lbr.num_samples;
  (* The synthesized branches must be consumable by Dcfg: call arcs land
     on function entries and are classified as calls. *)
  let dcfg = Propeller.Dcfg.build ~profile:p ~binary in
  check tb "synthesized call arcs classified" true
    (Hashtbl.length dcfg.Propeller.Dcfg.call_arcs > 0);
  Hashtbl.iter
    (fun _ (f : Propeller.Dcfg.dfunc) ->
      Support.Itab.iter
        (fun _ w -> check tb "dcfg edge weight positive" true (w > 0))
        f.Propeller.Dcfg.dedges)
    dcfg.Propeller.Dcfg.funcs

let test_autofdo_requires_metadata () =
  let _, program, run = Lazy.force sampled_fixture in
  let r = run () in
  let samples = Option.get r.Propeller.Pipeline.samples in
  let env = Buildsys.Driver.make_env () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"sampled.base" in
  Alcotest.check_raises "synthesize rejects map-less binary"
    (Invalid_argument "Autofdo.synthesize: binary has no .llvm_bb_addr_map")
    (fun () ->
      ignore (Propeller.Autofdo.synthesize ~samples ~program ~binary:base.binary ()))

let test_wpa_resource_model () =
  let _, _, _, result = Lazy.force (fixture) in
  check tb "peak mem positive" true (result.wpa.peak_mem_bytes > 0);
  check tb "dcfg counted" true (result.wpa.dcfg_blocks > 0 && result.wpa.dcfg_edges > 0);
  check tb "hot funcs counted" true (result.wpa.hot_funcs > 0)

(* --- Fault injection: dropped profile shards (ISSUE 5) ------------ *)

let test_wpa_shard_drop_accounting () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, profile = run_with_profile ~requests:100 program binary in
  let clean = Propeller.Wpa.analyze ~profile:(Propeller.Wpa.Lbr profile) ~binary () in
  check ti "no plan, nothing dropped" 0 clean.shards_dropped;
  check ti "no plan, no lost funcs" 0 clean.dropped_hot_funcs;
  (* Lose profile shards at rate 0.5 over 8 shards. *)
  let plan = { Faultsim.Plan.default with shard_drop = 0.5; shards = 8 } in
  let ctx = Support.Ctx.create ~recorder:(Obs.Recorder.create ()) ~faults:plan () in
  let faulted = Propeller.Wpa.analyze ~ctx ~profile:(Propeller.Wpa.Lbr profile) ~binary () in
  check ti "dropped shards reported"
    (List.length (Faultsim.Plan.dropped_shards plan))
    faulted.shards_dropped;
  (* Hot functions in dropped shards keep the baseline layout and are
     accounted one-for-one against the clean analysis. *)
  check ti "lost hot funcs accounted" (clean.hot_funcs - faulted.hot_funcs)
    faulted.dropped_hot_funcs;
  check tb "analysis still completes" true
    (faulted.hot_funcs + faulted.dropped_hot_funcs = clean.hot_funcs);
  (* No surviving plan names a function whose shard was dropped. *)
  List.iter
    (fun (p : Codegen.Directive.func_plan) ->
      check tb p.func false
        (Faultsim.Plan.shard_dropped plan ~shard:(Faultsim.Plan.shard_of plan ~key:p.func)))
    faulted.plans;
  (* Same plan, same drops: the degradation replays deterministically. *)
  let again = Propeller.Wpa.analyze ~ctx ~profile:(Propeller.Wpa.Lbr profile) ~binary () in
  check ti "replayed drops identical" faulted.shards_dropped again.shards_dropped;
  check ti "replayed losses identical" faulted.dropped_hot_funcs again.dropped_hot_funcs;
  check tb "replayed ordering identical" true (faulted.ordering = again.ordering)

let suite =
  [
    Alcotest.test_case "dcfg: requires metadata" `Quick test_dcfg_requires_metadata;
    Alcotest.test_case "dcfg: loop reconstruction" `Quick test_dcfg_reconstruction;
    Alcotest.test_case "dcfg: block mapping sane" `Quick test_dcfg_block_mapping;
    Alcotest.test_case "dcfg: call arcs" `Quick test_dcfg_call_arcs;
    Alcotest.test_case "dcfg: metadata = disassembly view" `Quick test_dcfg_disasm_view_agrees;
    Alcotest.test_case "wpa: plans valid" `Quick test_wpa_plans_valid;
    Alcotest.test_case "wpa: ordering covers primaries" `Quick test_wpa_ordering_covers_primaries;
    Alcotest.test_case "wpa: interproc plans valid" `Quick test_wpa_interproc_plans_valid;
    Alcotest.test_case "wpa: splitting can be disabled" `Quick test_wpa_split_functions_off;
    Alcotest.test_case "wpa: block layout hot first" `Quick test_wpa_block_layout_hot_first;
    Alcotest.test_case "pipeline: cold objects cached" `Quick test_pipeline_reuses_cold_objects;
    Alcotest.test_case "pipeline: PM/PO shapes" `Quick test_pipeline_po_binary_shape;
    Alcotest.test_case "pipeline: no perf regression" `Quick test_pipeline_improves_performance;
    Alcotest.test_case "pipeline: phase times" `Quick test_pipeline_phase_times;
    Alcotest.test_case "wpa: incremental layout cache" `Quick test_incremental_layout_cache;
    Alcotest.test_case "wpa: resource model" `Quick test_wpa_resource_model;
    Alcotest.test_case "pipeline: multi-round" `Slow test_run_rounds;
    Alcotest.test_case "wpa: shard-drop accounting" `Quick test_wpa_shard_drop_accounting;
    Alcotest.test_case "sampled: pipeline shape" `Quick test_sampled_pipeline_shape;
    Alcotest.test_case "sampled: deterministic relink" `Quick test_sampled_pipeline_deterministic;
    Alcotest.test_case "sampled: jobs invariance" `Quick test_sampled_jobs_invariance;
    Alcotest.test_case "policy: jobs invariance" `Slow test_policy_jobs_invariance;
    Alcotest.test_case "policy: unknown rejected" `Quick test_policy_unknown_rejected;
    Alcotest.test_case "autofdo: synthesis sane" `Quick test_autofdo_synthesis_sane;
    Alcotest.test_case "autofdo: requires metadata" `Quick test_autofdo_requires_metadata;
  ]

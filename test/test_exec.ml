open Testutil

let build_image ?codegen ?link program =
  let _, { Linker.Link.binary; _ } = compile_and_link ?codegen ?link program in
  (binary, Exec.Image.build program binary)

let run ?(requests = 20) image sink =
  Exec.Interp.run image { Exec.Interp.default_config with requests } sink

let test_image_block_fidelity () =
  let program = call_program () in
  let binary, image = build_image program in
  Ir.Program.iter_funcs program (fun f ->
      let fi = Exec.Image.func_index image f.name in
      for b = 0 to Ir.Func.num_blocks f - 1 do
        let xb = Exec.Image.block image ~func_idx:fi ~block:b in
        let info = Linker.Binary.block_info_exn binary ~func:f.name ~block:b in
        check ti "addr" info.addr xb.addr;
        check ti "size" info.size xb.size
      done)

let test_image_rejects_mismatched_binary () =
  let p1 = call_program () in
  let _, { Linker.Link.binary; _ } = compile_and_link p1 in
  let p2 =
    Ir.Program.make ~name:"other" ~main:"solo"
      [ Ir.Cunit.make ~name:"u" [ diamond_func ~name:"solo" () ] ]
  in
  try
    ignore (Exec.Image.build p2 binary);
    Alcotest.fail "expected mismatch failure"
  with Invalid_argument _ -> ()

let test_run_counts () =
  let program = call_program () in
  let _, image = build_image program in
  let stats = run ~requests:10 image Exec.Event.null in
  check ti "all requests" 10 stats.requests_completed;
  check tb "blocks executed" true (stats.blocks_executed > 10);
  check tb "calls happened" true (stats.calls > 0);
  check ti "calls return" stats.calls stats.returns;
  check tb "bytes fetched" true (stats.bytes_fetched > 0)

let test_determinism () =
  let _, program = medium_program () in
  let _, image = build_image program in
  let s1 = run image Exec.Event.null in
  let s2 = run image Exec.Event.null in
  check tb "identical reruns" true (s1 = s2)

(* The load-bearing property: the logical trace is identical across
   layouts of the same program; only physical (address-derived) numbers
   may change. *)
let test_layout_invariance () =
  let _, program = medium_program () in
  let _, image_base = build_image program in
  (* A deliberately different layout: reverse source order per function
     via plans, plus no relaxation. *)
  let plans =
    Ir.Program.fold_funcs program [] (fun acc f ->
        if Ir.Func.num_blocks f < 2 then acc
        else begin
          let ids = List.init (Ir.Func.num_blocks f) Fun.id in
          let rev = 0 :: List.rev (List.tl ids) in
          { Codegen.Directive.func = f.name;
            clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = rev } ] }
          :: acc
        end)
  in
  let _, image_alt =
    build_image ~codegen:{ Codegen.default_options with plans } program
  in
  let s1 = run image_base Exec.Event.null in
  let s2 = run image_alt Exec.Event.null in
  check ti "same blocks executed" s1.blocks_executed s2.blocks_executed;
  check ti "same calls" s1.calls s2.calls;
  check ti "same conditional branches" s1.cond_branches s2.cond_branches;
  check ti "same indirect jumps" s1.indirect_jumps s2.indirect_jumps;
  (* Physical outcomes (taken counts, fetched bytes) are layout
     dependent and expected to differ. *)
  check tb "layouts actually differ" true
    (s1.cond_taken <> s2.cond_taken || s1.bytes_fetched <> s2.bytes_fetched)

let test_branch_bias_observed () =
  (* A 0.75 back-edge must iterate the loop about 4x per entry. *)
  let f = loop_func ~name:"main" () in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let _, image = build_image program in
  let stats = run ~requests:500 image Exec.Event.null in
  let per_request = float_of_int stats.blocks_executed /. 500.0 in
  (* blocks per request = 1 (entry) + ~4 (body) + 1 (exit). *)
  check tb "loop iterates ~4x" true (per_request > 4.5 && per_request < 7.5)

let test_fetch_events_cover_blocks () =
  let program = call_program () in
  let binary, image = build_image program in
  let fetched = ref 0 in
  let sink =
    {
      Exec.Event.null with
      Exec.Event.on_fetch =
        (fun addr len _ ->
          check tb "fetch in text" true (addr >= binary.text_start && addr + len <= binary.text_end);
          fetched := !fetched + len);
    }
  in
  let stats = run ~requests:5 image sink in
  check ti "sink sees all fetched bytes" stats.bytes_fetched !fetched

let test_branch_events_consistent () =
  let program = call_program () in
  let binary, image = build_image program in
  let bad = ref 0 in
  let sink =
    {
      Exec.Event.null with
      Exec.Event.on_branch =
        (fun ~src ~dst ~kind ~taken ->
          (* A non-taken conditional continues at the next address. *)
          (match kind, taken with
          | Exec.Event.Cond, false -> if src <> dst then incr bad
          | _, _ -> ());
          (* Root returns leave the text segment (the exit stub). *)
          let exit_stub = kind = Exec.Event.Ret && dst < binary.text_start in
          if (not exit_stub) && (dst < binary.text_start || dst > binary.text_end) then
            incr bad);
    }
  in
  ignore (run ~requests:10 image sink);
  check ti "all branch events well-formed" 0 !bad

let test_call_depth_elision () =
  (* main -> f -> g chain with depth limit 1: g never runs. *)
  let g = diamond_func ~name:"g" () in
  let f =
    Ir.Func.make ~name:"f"
      [| Ir.Block.make ~id:0 ~body:[ Ir.Inst.DirectCall "g" ] ~term:Ir.Term.Return () |]
  in
  let main =
    Ir.Func.make ~name:"main"
      [| Ir.Block.make ~id:0 ~body:[ Ir.Inst.DirectCall "f" ] ~term:Ir.Term.Return () |]
  in
  let program =
    Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ main; f; g ] ]
  in
  let _, image = build_image program in
  let stats =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = 3; call_depth_limit = 1 }
      Exec.Event.null
  in
  (* Each request: call main->f happens (depth 0 < 1); f->g elided. *)
  check ti "one call per request" 3 stats.calls

let test_step_budget () =
  (* An infinite loop must be stopped by the per-request budget. *)
  let f =
    Ir.Func.make ~name:"main"
      [|
        compute_block ~id:0 ~bytes:4 ~term:(Ir.Term.Jump 1);
        compute_block ~id:1 ~bytes:4 ~term:(Ir.Term.Jump 1);
      |]
  in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let _, image = build_image program in
  let stats =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = 2; max_steps_per_request = 100 }
      Exec.Event.null
  in
  check ti "budget caps execution" 202 stats.blocks_executed;
  check ti "requests still complete" 2 stats.requests_completed

let test_inline_data_not_fetched () =
  let f =
    Ir.Func.make ~name:"main"
      [|
        Ir.Block.make ~id:0
          ~body:[ Ir.Inst.Compute 10; Ir.Inst.JumpTableData 64; Ir.Inst.Compute 6 ]
          ~term:Ir.Term.Return ();
      |]
  in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let _, image = build_image program in
  let stats = run ~requests:1 image Exec.Event.null in
  (* 10 + 6 + ret(1) executed; the 64 data bytes are skipped. *)
  check ti "data bytes skipped" 17 stats.bytes_fetched

(* Steady-state allocation law (ISSUE 9): once the event tape and the
   LBR tables have grown to capacity, a warm profiled run allocates a
   fixed per-run overhead (the stats record, the drain closure) and
   nothing per event. The per-request bound guards the flat fast path
   against reintroducing closures or tuple keys on the event path,
   which immediately costs tens of words per request. *)
let test_steady_state_allocation () =
  let _, program = medium_program () in
  let _, image = build_image program in
  let profile = Perfmon.Lbr.create_profile () in
  let c = Perfmon.Lbr.collector_state Perfmon.Lbr.default_config profile in
  let reps = 5 in
  (* Words allocated by [reps] warm runs at [requests] requests each.
     Each run pays a fixed setup cost (the event tape, the visits
     array, the interpreter state), so the per-request marginal cost is
     the slope between two request counts, not a single quotient. *)
  let measure requests =
    let config = { Exec.Interp.default_config with requests } in
    let run () =
      ignore
        (Exec.Interp.run_tape image config ~drain:(Perfmon.Lbr.consume c)
          : Exec.Interp.stats)
    in
    (* Warm-up: grow the tape and the profile tables to steady capacity. *)
    for _ = 1 to 3 do
      run ()
    done;
    let w0 = Gc.minor_words () in
    for _ = 1 to reps do
      run ()
    done;
    Gc.minor_words () -. w0
  in
  let lo = 20 and hi = 120 in
  let slope = (measure hi -. measure lo) /. float_of_int (reps * (hi - lo)) in
  (* Zero today. One stray box or closure on the event path costs
     hundreds of words per request, so 8.0 is a tight tripwire that
     still tolerates incidental runtime noise. *)
  if slope > 8.0 then
    Alcotest.failf "steady-state allocation too high: %.2f words/request" slope

let suite =
  [
    Alcotest.test_case "image matches binary" `Quick test_image_block_fidelity;
    Alcotest.test_case "image rejects foreign binary" `Quick test_image_rejects_mismatched_binary;
    Alcotest.test_case "run counts" `Quick test_run_counts;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "layout invariance of logical trace" `Quick test_layout_invariance;
    Alcotest.test_case "branch bias drives loops" `Quick test_branch_bias_observed;
    Alcotest.test_case "fetch events cover blocks" `Quick test_fetch_events_cover_blocks;
    Alcotest.test_case "branch events consistent" `Quick test_branch_events_consistent;
    Alcotest.test_case "call depth elision" `Quick test_call_depth_elision;
    Alcotest.test_case "step budget" `Quick test_step_budget;
    Alcotest.test_case "inline data not fetched" `Quick test_inline_data_not_fetched;
    Alcotest.test_case "steady-state allocation bounded" `Quick test_steady_state_allocation;
  ]

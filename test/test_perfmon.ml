open Testutil

let profile_of ?(requests = 30) program =
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let stats, profile = run_with_profile ~requests program binary in
  (binary, stats, profile)

let test_collector_samples () =
  let _, program = medium_program () in
  let _, stats, profile = profile_of program in
  check tb "samples collected" true (profile.num_samples > 0);
  check tb "records accumulate" true (profile.num_records >= profile.num_samples);
  (* One sample per [period] taken branches, buffers hold up to 32. *)
  let taken = Exec.Interp.taken_branches stats in
  let expected = taken / Perfmon.Lbr.default_config.period in
  check tb "sample count near expectation" true
    (abs (profile.num_samples - expected) <= 1)

let test_branch_pairs_valid () =
  let program = call_program () in
  let binary, _, profile = profile_of ~requests:50 program in
  Perfmon.Lbr.iter_pairs
    (fun ~src ~dst n ->
      check tb "count positive" true (n > 0);
      check tb "src in text" true (src > binary.text_start && src <= binary.text_end);
      (* Root returns target the exit stub below the text segment. *)
      check tb "dst in text or exit stub" true
        (dst < binary.text_start || (dst >= binary.text_start && dst < binary.text_end)))
    profile.branches

let test_ranges_ordered () =
  let _, program = medium_program () in
  let _, _, profile = profile_of program in
  Perfmon.Lbr.iter_pairs
    (fun ~src:lo ~dst:hi _ -> check tb "range well formed" true (lo <= hi))
    profile.ranges

let test_sampling_period_thins_profile () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let collect period =
    let profile = Perfmon.Lbr.create_profile () in
    let image = Exec.Image.build program binary in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image
        { Exec.Interp.default_config with requests = 30 }
        (Perfmon.Lbr.collector { Perfmon.Lbr.default_config with period } profile)
    in
    profile
  in
  let dense = collect 13 and sparse = collect 1009 in
  check tb "longer period, fewer samples" true (sparse.num_samples < dense.num_samples);
  check tb "still nonempty" true (sparse.num_samples > 0)

let test_merge () =
  let program = call_program () in
  let _, _, p1 = profile_of ~requests:10 program in
  let _, _, p2 = profile_of ~requests:10 program in
  let total_before = Perfmon.Lbr.pair_total p1.branches in
  let samples_before = p1.num_samples in
  Perfmon.Lbr.merge p1 p2;
  let total_after = Perfmon.Lbr.pair_total p1.branches in
  check ti "branch counts add" (2 * total_before) total_after;
  check ti "samples add" (2 * samples_before) p1.num_samples

let test_raw_bytes_model () =
  let program = call_program () in
  let _, _, profile = profile_of program in
  let bytes = Perfmon.Lbr.raw_bytes Perfmon.Lbr.default_config profile in
  check tb "scales with samples" true
    (bytes >= profile.num_samples * 24 * Perfmon.Lbr.default_config.buffer_depth)

let test_hot_edge_dominates () =
  (* The loop back-edge of a hot loop must be among the most counted
     branch pairs. *)
  let f = loop_func ~name:"main" () in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let binary, _, profile = profile_of ~requests:400 program in
  let b1 = Linker.Binary.block_info_exn binary ~func:"main" ~block:1 in
  let back_edge_count = ref 0 in
  Perfmon.Lbr.iter_pairs
    (fun ~src:_ ~dst n -> if dst = b1.addr then back_edge_count := max !back_edge_count n)
    profile.branches;
  let back_edge_count = !back_edge_count in
  let max_count = Support.Itab.fold (fun _ n acc -> max acc n) profile.branches 0 in
  check ti "back edge is the hottest pair" max_count back_edge_count

(* --- Software stack sampler --------------------------------------- *)

let samples_of ?(config = Perfmon.Sampler.default_config) ?(requests = 40) program binary =
  let profile = Perfmon.Sampler.create_profile () in
  let image = Exec.Image.build program binary in
  let stats =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests }
      (Perfmon.Sampler.collector config profile)
  in
  (stats, profile)

let test_sampler_collects () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, p = samples_of program binary in
  check tb "samples collected" true (p.num_samples > 0);
  check ti "leaf counts sum to samples" p.num_samples (Perfmon.Sampler.leaf_total p);
  check tb "stack walks recorded frames" true (p.num_frames >= p.num_samples);
  Hashtbl.iter
    (fun leaf c ->
      check tb "leaf count positive" true (c > 0);
      check tb "leaf inside text" true (leaf >= binary.text_start && leaf < binary.text_end))
    p.leaves

let test_sampler_deterministic () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, p1 = samples_of program binary in
  let _, p2 = samples_of program binary in
  check ti "same sample count" p1.num_samples p2.num_samples;
  check ti "same frame count" p1.num_frames p2.num_frames;
  check ti "same leaf cardinality" (Hashtbl.length p1.leaves) (Hashtbl.length p2.leaves);
  Hashtbl.iter
    (fun k c -> check ti "leaf count equal" c (Option.value ~default:0 (Hashtbl.find_opt p2.leaves k)))
    p1.leaves;
  Hashtbl.iter
    (fun k c -> check ti "arc count equal" c (Option.value ~default:0 (Hashtbl.find_opt p2.arcs k)))
    p1.arcs

let test_sampler_seed_moves_schedule () =
  (* A different jitter seed shifts the sample points; the profile must
     change (observed once, then locked in by determinism). *)
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let collect seed =
    samples_of ~config:{ Perfmon.Sampler.default_config with seed } program binary |> snd
  in
  let a = collect 0 and b = collect 1 in
  let leaves p =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) p.Perfmon.Sampler.leaves []
    |> List.sort compare
  in
  check tb "seed changes the sampled profile" true
    (a.num_samples <> b.num_samples || leaves a <> leaves b)

let test_sampler_period_thins () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let collect period =
    samples_of ~config:{ Perfmon.Sampler.default_config with period } program binary |> snd
  in
  let dense = collect 7 and sparse = collect 431 in
  check tb "longer period, fewer samples" true (sparse.num_samples < dense.num_samples);
  check tb "sparse still lands" true (sparse.num_samples > 0)

let test_sampler_arcs_land_on_entries () =
  let program = call_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, p = samples_of ~requests:200 program binary in
  check tb "arcs observed" true (Hashtbl.length p.arcs > 0);
  check ti "arc crossings sum" (Perfmon.Sampler.arc_total p)
    (Hashtbl.fold (fun _ c acc -> acc + c) p.arcs 0);
  (* Every recorded callee entry is a real function entry address. *)
  let entries =
    Hashtbl.fold
      (fun (fname, _) (info : Linker.Binary.block_info) acc ->
        if String.length fname > 0 then info.addr :: acc else acc)
      binary.blocks []
  in
  Hashtbl.iter
    (fun (_, centry) _ ->
      check tb "arc lands on a block entry" true (List.mem centry entries))
    p.arcs

let test_sampler_merge () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, p1 = samples_of program binary in
  let _, p2 = samples_of program binary in
  let samples_before = p1.num_samples and frames_before = p1.num_frames in
  let leaf_before = Perfmon.Sampler.leaf_total p1 in
  Perfmon.Sampler.merge p1 p2;
  check ti "samples add" (2 * samples_before) p1.num_samples;
  check ti "frames add" (2 * frames_before) p1.num_frames;
  check ti "leaf mass adds" (2 * leaf_before) (Perfmon.Sampler.leaf_total p1)

(* --- PEBS data-miss sampling ------------------------------------- *)

let pebs_of ?(period = Perfmon.Pebs.default_config.Perfmon.Pebs.period) ?(requests = 40)
    program binary =
  let profile = Perfmon.Pebs.create_profile () in
  let image = Exec.Image.build program binary in
  let stats =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests }
      (Perfmon.Pebs.collector { Perfmon.Pebs.period } profile)
  in
  (stats, profile)

let test_pebs_period_one_samples_every_miss () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let stats, profile = pebs_of ~period:1 program binary in
  check ti "every uncovered miss sampled" stats.Exec.Interp.dmisses profile.num_samples;
  check ti "per-site counts sum to the samples" profile.num_samples
    (Perfmon.Pebs.total profile)

let test_pebs_period_exceeds_misses () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let stats, profile = pebs_of ~period:(10 * 1000 * 1000) program binary in
  check tb "workload does miss" true (stats.Exec.Interp.dmisses > 0);
  check ti "period beyond the miss count collects nothing" 0 profile.num_samples;
  check ti "no sites recorded" 0 (Support.Itab.length profile.misses)

let test_pebs_period_edge () =
  (* Exactly [dmisses] misses at period [dmisses] yields one sample. *)
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let stats, _ = pebs_of ~period:1 program binary in
  let n = stats.Exec.Interp.dmisses in
  let _, profile = pebs_of ~period:n program binary in
  check ti "last miss of the run is the one sample" 1 profile.num_samples

let test_pebs_merge_accumulates () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, p1 = pebs_of program binary in
  let _, p2 = pebs_of program binary in
  check tb "profiles nonempty" true (p1.num_samples > 0);
  let total_before = Perfmon.Pebs.total p1 in
  let samples_before = p1.num_samples in
  Perfmon.Pebs.merge p1 p2;
  check ti "site counts add" (2 * total_before) (Perfmon.Pebs.total p1);
  check ti "samples add" (2 * samples_before) p1.num_samples;
  Support.Itab.iter
    (fun src c ->
      check ti (Printf.sprintf "site %x doubled" src) (2 * c)
        (Support.Itab.find p1.misses src))
    p2.misses

let test_pebs_collector_deterministic () =
  (* The miss roll is seeded by logical block identity, so two
     identical runs sample identical sites with identical counts. *)
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, p1 = pebs_of program binary in
  let _, p2 = pebs_of program binary in
  check ti "same sample count" p1.num_samples p2.num_samples;
  check ti "same site cardinality" (Support.Itab.length p1.misses)
    (Support.Itab.length p2.misses);
  Support.Itab.iter
    (fun src c ->
      check ti (Printf.sprintf "site %x count" src) c (Support.Itab.find p2.misses src))
    p1.misses

(* --- Packed-key merge equivalence (ISSUE 9) ------------------------ *)

(* Profiles built and merged through the packed-key flat tables must be
   indistinguishable from the old tuple-keyed Hashtbl path: same
   distinct-pair set, same per-pair totals. *)
let merge_equivalence_law =
  let arc = QCheck.(triple (int_range 0 0xffff) (int_range 0 0xffff) (int_range 1 1000)) in
  QCheck.Test.make ~count:200 ~name:"packed-key profile merge = tuple-keyed merge"
    QCheck.(pair (small_list arc) (small_list arc))
    (fun (xs, ys) ->
      let a = Perfmon.Lbr.create_profile () and b = Perfmon.Lbr.create_profile () in
      List.iter (fun (s, d, w) -> Perfmon.Lbr.add_pair a.branches ~src:s ~dst:d w) xs;
      List.iter (fun (s, d, w) -> Perfmon.Lbr.add_pair b.branches ~src:s ~dst:d w) ys;
      Perfmon.Lbr.merge a b;
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (s, d, w) ->
          let k = (s, d) in
          Hashtbl.replace reference k
            (w + Option.value ~default:0 (Hashtbl.find_opt reference k)))
        (xs @ ys);
      Support.Itab.length a.branches = Hashtbl.length reference
      && Hashtbl.fold
           (fun (s, d) w ok ->
             ok && Perfmon.Lbr.find_pair a.branches ~src:s ~dst:d = w)
           reference true)

let pebs_merge_equivalence_law =
  let hit = QCheck.(pair (int_range 0 0xffff) (int_range 1 1000)) in
  QCheck.Test.make ~count:200 ~name:"packed pebs merge = tuple-keyed merge"
    QCheck.(pair (small_list hit) (small_list hit))
    (fun (xs, ys) ->
      let a = Perfmon.Pebs.create_profile () and b = Perfmon.Pebs.create_profile () in
      List.iter (fun (addr, n) -> Support.Itab.add a.Perfmon.Pebs.misses addr n) xs;
      List.iter (fun (addr, n) -> Support.Itab.add b.Perfmon.Pebs.misses addr n) ys;
      Perfmon.Pebs.merge a b;
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (addr, n) ->
          Hashtbl.replace reference addr
            (n + Option.value ~default:0 (Hashtbl.find_opt reference addr)))
        (xs @ ys);
      Support.Itab.length a.Perfmon.Pebs.misses = Hashtbl.length reference
      && Hashtbl.fold
           (fun addr n ok -> ok && Support.Itab.find a.Perfmon.Pebs.misses addr = n)
           reference true)

let suite =
  [
    Alcotest.test_case "collector samples" `Quick test_collector_samples;
    Alcotest.test_case "branch pairs valid" `Quick test_branch_pairs_valid;
    Alcotest.test_case "ranges ordered" `Quick test_ranges_ordered;
    Alcotest.test_case "sampling period" `Quick test_sampling_period_thins_profile;
    Alcotest.test_case "profile merge" `Quick test_merge;
    Alcotest.test_case "raw bytes model" `Quick test_raw_bytes_model;
    Alcotest.test_case "hot edge dominates" `Quick test_hot_edge_dominates;
    Alcotest.test_case "sampler collects" `Quick test_sampler_collects;
    Alcotest.test_case "sampler deterministic" `Quick test_sampler_deterministic;
    Alcotest.test_case "sampler seed moves schedule" `Quick test_sampler_seed_moves_schedule;
    Alcotest.test_case "sampler period thins" `Quick test_sampler_period_thins;
    Alcotest.test_case "sampler arcs land on entries" `Quick test_sampler_arcs_land_on_entries;
    Alcotest.test_case "sampler merge" `Quick test_sampler_merge;
    Alcotest.test_case "pebs period 1 samples every miss" `Quick
      test_pebs_period_one_samples_every_miss;
    Alcotest.test_case "pebs period beyond miss count" `Quick test_pebs_period_exceeds_misses;
    Alcotest.test_case "pebs period edge" `Quick test_pebs_period_edge;
    Alcotest.test_case "pebs merge accumulates" `Quick test_pebs_merge_accumulates;
    Alcotest.test_case "pebs collector deterministic" `Quick test_pebs_collector_deterministic;
    QCheck_alcotest.to_alcotest merge_equivalence_law;
    QCheck_alcotest.to_alcotest pebs_merge_equivalence_law;
  ]

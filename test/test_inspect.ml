open Testutil

(* Shared pipeline run: the PO binary has cold-split fragments, the
   profile drives the annotate/paths views. Built once, read by all. *)
let fixture =
  lazy
    (let spec, program = medium_program () in
     let env = Buildsys.Driver.make_env () in
     let result =
       Propeller.Pipeline.run
         ~config:
           {
             Propeller.Pipeline.default_config with
             profile_run = { Exec.Interp.default_config with requests = spec.requests };
           }
         ~env ~program ~name:"testprog" ()
     in
     let po = Propeller.Pipeline.optimized_binary result in
     let _, profile = run_with_profile ~requests:spec.requests program po in
     (program, result, po, profile))

(* --- Resolve ------------------------------------------------------ *)

let test_resolve_every_block_byte () =
  let _, _, po, _ = Lazy.force fixture in
  let r = Inspect.Resolve.create po in
  (* First and last byte of every placed block resolve to that block. *)
  List.iter
    (fun (b : Linker.Binary.block_info) ->
      List.iter
        (fun addr ->
          match Inspect.Resolve.resolve r addr with
          | Inspect.Resolve.Code l ->
            check ts "func" b.func l.Inspect.Resolve.func;
            check ti "block" b.block l.Inspect.Resolve.block;
            check ti "offset" (addr - b.addr) l.Inspect.Resolve.offset
          | _ -> Alcotest.failf "0x%x inside %s#%d did not resolve to code" addr b.func b.block)
        [ b.addr; b.addr + b.size - 1 ])
    (Linker.Binary.blocks_in_address_order po)

let test_resolve_cold_fragment () =
  let _, _, po, _ = Lazy.force fixture in
  let r = Inspect.Resolve.create po in
  let cold_secs =
    List.filter
      (fun (p : Linker.Binary.placed) ->
        p.kind = Objfile.Section.Text
        && match p.symbol with Some s -> Objfile.Symname.is_cold s | None -> false)
      po.Linker.Binary.sections
  in
  check tb "PO layout has cold sections" true (cold_secs <> []);
  List.iter
    (fun (p : Linker.Binary.placed) ->
      match Inspect.Resolve.resolve r p.addr with
      | Inspect.Resolve.Code l ->
        check tb "fragment classified cold" true (l.Inspect.Resolve.fragment = Inspect.Resolve.Cold);
        (* The owner function must match the cluster symbol's owner. *)
        check ts "owner" (Objfile.Symname.owner (Option.get p.symbol)) l.Inspect.Resolve.func
      | _ -> Alcotest.failf "cold section %s start did not resolve to code" p.name)
    cold_secs

let test_resolve_padding_between_sections () =
  let _, _, po, _ = Lazy.force fixture in
  let r = Inspect.Resolve.create po in
  let texts =
    List.filter (fun (p : Linker.Binary.placed) -> p.kind = Objfile.Section.Text)
      po.Linker.Binary.sections
    |> List.sort (fun (a : Linker.Binary.placed) b -> compare a.addr b.addr)
  in
  (* Find an alignment gap between two adjacent text sections. *)
  let rec gap = function
    | (a : Linker.Binary.placed) :: (b : Linker.Binary.placed) :: rest ->
      if a.addr + a.size < b.addr then Some (a, b) else gap (b :: rest)
    | _ -> None
  in
  match gap texts with
  | None -> Alcotest.fail "expected at least one alignment gap in the PO text segment"
  | Some (a, b) -> (
    match Inspect.Resolve.resolve r (a.addr + a.size) with
    | Inspect.Resolve.Padding { prev; next } ->
      check ts "prev symbol" (Option.value a.symbol ~default:a.name)
        (Option.value prev ~default:"<none>");
      check ts "next symbol" (Option.value b.symbol ~default:b.name)
        (Option.value next ~default:"<none>")
    | _ -> Alcotest.fail "gap byte did not classify as padding")

let test_resolve_outside_text () =
  let _, _, po, _ = Lazy.force fixture in
  let r = Inspect.Resolve.create po in
  (match Inspect.Resolve.resolve r (po.Linker.Binary.text_end + 1_000_000) with
  | Inspect.Resolve.Outside -> ()
  | Inspect.Resolve.Noncode _ -> ()
  | _ -> Alcotest.fail "far address classified as text");
  (* One past the last text byte is never code. *)
  match Inspect.Resolve.resolve r po.Linker.Binary.text_end with
  | Inspect.Resolve.Code _ -> Alcotest.fail "text_end resolved to code"
  | _ -> ()

(* --- Size --------------------------------------------------------- *)

let test_size_reconciles () =
  let _, _, po, _ = Lazy.force fixture in
  let s = Inspect.Size.measure po in
  check ti "kinds sum to total" (Linker.Binary.total_size po)
    (List.fold_left (fun acc (r : Inspect.Size.kind_row) -> acc + r.bytes) 0 s.kinds);
  check ti "hot + cold = text bytes" (Linker.Binary.text_bytes po)
    (s.hot_text_bytes + s.cold_text_bytes);
  check ti "per-function sums = text bytes" (Linker.Binary.text_bytes po)
    (List.fold_left
       (fun acc (f : Inspect.Size.func_row) -> acc + f.hot_bytes + f.cold_bytes)
       0 s.funcs);
  check ti "metadata components" s.metadata_bytes
    (s.bb_addr_map_bytes + s.eh_frame_bytes + s.rela_bytes);
  check tb "PO split some text cold" true (s.cold_text_bytes > 0)

(* --- Annotate ----------------------------------------------------- *)

let test_annotate_counts_attributed () =
  let _, _, po, profile = Lazy.force fixture in
  let t = Inspect.Annotate.analyze ~binary:po ~profile in
  check tb "has hot functions" true (t.Inspect.Annotate.functions <> []);
  check ti "num_samples from profile" profile.Perfmon.Lbr.num_samples t.num_samples;
  (* Taken exits cannot exceed the profile's aggregate taken records,
     and at least one block must show a taken exit. *)
  let taken =
    List.fold_left
      (fun acc (fr : Inspect.Annotate.func_report) ->
        List.fold_left (fun acc (r : Inspect.Annotate.block_row) -> acc + r.taken_out) acc fr.rows)
      0 t.functions
  in
  check tb "some taken exits" true (taken > 0);
  check tb "taken bounded by profile" true (taken <= Perfmon.Lbr.branch_total profile)

(* --- Determinism -------------------------------------------------- *)

(* Two fresh end-to-end runs (generation, build, profile, analysis)
   must render byte-identical JSON: the acceptance bar for every view. *)
let fresh_view () =
  let spec, program = medium_program () in
  let env = Buildsys.Driver.make_env () in
  let result =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests = spec.requests };
        }
      ~env ~program ~name:"testprog" ()
  in
  let po = Propeller.Pipeline.optimized_binary result in
  let _, profile = run_with_profile ~requests:spec.requests program po in
  let annotate = Obs.Json.to_string (Inspect.Annotate.to_json (Inspect.Annotate.analyze ~binary:po ~profile)) in
  let dcfg = Propeller.Dcfg.build_of_blocks ~profile ~binary:po in
  let paths = Inspect.Paths.extract dcfg in
  (annotate, Obs.Json.to_string (Inspect.Paths.to_json paths), Inspect.Paths.to_folded paths)

let test_json_determinism () =
  let a1, p1, f1 = fresh_view () in
  let a2, p2, f2 = fresh_view () in
  check ts "annotate JSON byte-identical" a1 a2;
  check ts "paths JSON byte-identical" p1 p2;
  check ts "folded stacks byte-identical" f1 f2

(* --- Paths -------------------------------------------------------- *)

let test_paths_weights_bounded () =
  let _, _, po, profile = Lazy.force fixture in
  let dcfg = Propeller.Dcfg.build_of_blocks ~profile ~binary:po in
  let paths = Inspect.Paths.extract dcfg in
  check tb "some paths decomposed" true (paths <> []);
  (* Weight-descending order, positive weights, no block repeats. *)
  let rec descending = function
    | (a : Inspect.Paths.path) :: (b : Inspect.Paths.path) :: rest ->
      a.weight >= b.weight && descending (b :: rest)
    | _ -> true
  in
  check tb "weight-descending" true (descending paths);
  List.iter
    (fun (p : Inspect.Paths.path) ->
      check tb "positive weight" true (p.weight > 0);
      check ti "no repeated block"
        (List.length p.blocks)
        (List.length (List.sort_uniq compare p.blocks)))
    paths;
  (* Folded rendering: one line per path, flamegraph grammar. *)
  let folded = Inspect.Paths.to_folded paths in
  let lines = String.split_on_char '\n' folded |> List.filter (fun l -> l <> "") in
  check ti "one folded line per path" (List.length paths) (List.length lines)

(* --- Diff --------------------------------------------------------- *)

let test_diff_base_vs_po () =
  let program, result, po, _ = Lazy.force fixture in
  let base = result.Propeller.Pipeline.metadata_build.Buildsys.Driver.binary in
  let _, profile = run_with_profile ~requests:40 program base in
  let d = Inspect.Diff.compare ~profile base po in
  let m = d.Inspect.Diff.movement in
  check ti "all blocks matched" m.blocks_a m.common;
  check tb "layout moved blocks" true (m.moved > 0);
  check tb "some text went cold" true (m.hot_to_cold > 0);
  (* Histogram weights are conserved: every replayed sample lands in a
     bucket on the A side. *)
  let wa = List.fold_left (fun acc (b : Inspect.Diff.bucket) -> acc + b.weight_a) 0 d.buckets in
  let wb = List.fold_left (fun acc (b : Inspect.Diff.bucket) -> acc + b.weight_b) 0 d.buckets in
  check tb "A weights bounded" true (wa <= d.branch_weight);
  check tb "B weights bounded" true (wb + d.unmatched_weight <= d.branch_weight)

(* --- Lbr mispredicts ---------------------------------------------- *)

let test_lbr_mispredicts () =
  (* A 50/50 branch defeats the 2-bit counter: its taken records must
     show a substantial mispredict count. *)
  let f = diamond_func ~name:"main" ~prob:0.5 () in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let _, { Linker.Link.binary; _ } = compile_and_link program in
  let _, profile = run_with_profile ~requests:400 program binary in
  check tb "mispredicts recorded" true (Perfmon.Lbr.mispredict_total profile > 0);
  (* Per-pair counts never exceed the pair's record count. *)
  Perfmon.Lbr.iter_pairs
    (fun ~src ~dst m ->
      let n = Perfmon.Lbr.find_pair profile.Perfmon.Lbr.branches ~src ~dst in
      if m > n then Alcotest.failf "pair (0x%x,0x%x): %d mispredicts > %d records" src dst m n)
    profile.Perfmon.Lbr.mispredicts;
  (* Rate accessor agrees with the raw tables and is 0 for unseen pairs. *)
  check tf "unseen pair rate" 0.0 (Perfmon.Lbr.mispredict_rate profile ~src:1 ~dst:2)

let test_lbr_mispredicts_deterministic () =
  let run () =
    let f = diamond_func ~name:"main" ~prob:0.5 () in
    let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
    let _, { Linker.Link.binary; _ } = compile_and_link program in
    let _, profile = run_with_profile ~requests:400 program binary in
    Perfmon.Lbr.mispredict_total profile
  in
  check ti "deterministic mispredict total" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "resolve: every block byte" `Quick test_resolve_every_block_byte;
    Alcotest.test_case "resolve: cold fragments" `Quick test_resolve_cold_fragment;
    Alcotest.test_case "resolve: padding between sections" `Quick
      test_resolve_padding_between_sections;
    Alcotest.test_case "resolve: outside text" `Quick test_resolve_outside_text;
    Alcotest.test_case "size: totals reconcile" `Quick test_size_reconciles;
    Alcotest.test_case "annotate: counts attributed" `Quick test_annotate_counts_attributed;
    Alcotest.test_case "json: byte-identical across runs" `Slow test_json_determinism;
    Alcotest.test_case "paths: weights bounded" `Quick test_paths_weights_bounded;
    Alcotest.test_case "diff: base vs po" `Quick test_diff_base_vs_po;
    Alcotest.test_case "lbr: mispredict modeling" `Quick test_lbr_mispredicts;
    Alcotest.test_case "lbr: mispredict determinism" `Quick test_lbr_mispredicts_deterministic;
  ]

open Testutil

(* --- Obs.Timeseries edge cases ------------------------------------ *)

let test_single_sample () =
  let clk = Obs.Clock.create () in
  let t = Obs.Timeseries.create ~window_s:1.0 clk in
  Obs.Clock.advance clk 0.25;
  Obs.Timeseries.set t "g" 42.0;
  match Obs.Timeseries.latest t "g" with
  | None -> Alcotest.fail "expected a window"
  | Some s ->
    check ti "count" 1 s.count;
    check tf "sum" 42.0 s.sum;
    check tf "last" 42.0 s.last;
    check tf "p50 of one sample" 42.0 s.p50;
    check tf "p99 of one sample" 42.0 s.p99;
    check tf "gauge value is the sample" 42.0 s.value;
    check tf "decayed mean of one window" 42.0 (Obs.Timeseries.decayed t "g")

let test_empty_gap_windows () =
  let clk = Obs.Clock.create () in
  let t = Obs.Timeseries.create ~window_s:1.0 clk in
  Obs.Timeseries.add t "c" 1.0;
  Obs.Clock.advance clk 2.5;  (* skip window 1 entirely *)
  Obs.Timeseries.add t "c" 3.0;
  let ws = Obs.Timeseries.windows t "c" in
  check ti "gap materialized" 3 (List.length ws);
  let w1 = List.nth ws 1 in
  check ti "gap index" 1 w1.Obs.Timeseries.index;
  check ti "gap is empty" 0 w1.count;
  check tf "gap reads zero" 0.0 w1.value;
  (* Empty windows carry no reading, so the decayed mean sees only
     windows 0 and 2: (3 + 0.25 * 1) / 1.25. *)
  check tf "decay skips gaps" 2.6 (Obs.Timeseries.decayed t "c")

let test_boundary_rollover () =
  let clk = Obs.Clock.create () in
  let t = Obs.Timeseries.create ~window_s:1.0 clk in
  Obs.Timeseries.add t "c" 1.0;
  Obs.Clock.advance clk 1.0;
  (* Half-open windows: a sample landing exactly on k * window_s opens
     window k instead of extending window k - 1. *)
  Obs.Timeseries.add t "c" 5.0;
  let ws = Obs.Timeseries.windows t "c" in
  check ti "two windows" 2 (List.length ws);
  let w0 = List.nth ws 0 and w1 = List.nth ws 1 in
  check ti "first window index" 0 w0.Obs.Timeseries.index;
  check tf "first window keeps its sample" 1.0 w0.value;
  check ti "boundary sample opens the next window" 1 w1.Obs.Timeseries.index;
  check tf "second window sums alone" 5.0 w1.value;
  check tf "window start is the boundary" 1.0 w1.start_s

let test_decay_to_zero () =
  let clk = Obs.Clock.create () in
  let t = Obs.Timeseries.create ~window_s:1.0 ~decay:0.0 clk in
  Obs.Timeseries.add t "c" 100.0;
  Obs.Clock.advance clk 1.0;
  Obs.Timeseries.add t "c" 4.0;
  (* decay = 0 degrades to "newest window only": 0^0 = 1 weighs the
     newest, 0^1 = 0 erases all history. *)
  check tf "zero decay forgets instantly" 4.0 (Obs.Timeseries.decayed t "c")

let test_capacity_eviction () =
  let clk = Obs.Clock.create () in
  let t = Obs.Timeseries.create ~window_s:1.0 ~capacity:3 clk in
  for i = 0 to 5 do
    Obs.Timeseries.add t "c" (float_of_int i);
    Obs.Clock.advance clk 1.0
  done;
  let ws = Obs.Timeseries.windows t "c" in
  check ti "ring keeps the last capacity windows" 3 (List.length ws);
  check ti "oldest surviving window" 3 (List.nth ws 0).Obs.Timeseries.index;
  check tf "newest reading intact" 5.0 (List.nth ws 2).Obs.Timeseries.value

let test_kind_mismatch_rejected () =
  let clk = Obs.Clock.create () in
  let t = Obs.Timeseries.create clk in
  Obs.Timeseries.add t "m" 1.0;
  (try
     Obs.Timeseries.set t "m" 2.0;
     Alcotest.fail "expected kind mismatch rejection"
   with Invalid_argument _ -> ());
  check tb "series kind fixed by first record" true
    (Obs.Timeseries.kind_of t "m" = Some Obs.Timeseries.Counter)

let test_rate_reading () =
  let clk = Obs.Clock.create () in
  let t = Obs.Timeseries.create ~window_s:2.0 clk in
  Obs.Timeseries.rate t "r" 10.0;
  Obs.Timeseries.rate t "r" 4.0;
  match Obs.Timeseries.latest t "r" with
  | None -> Alcotest.fail "expected a window"
  | Some s -> check tf "rate divides by window width" 7.0 s.value

let suite =
  [
    Alcotest.test_case "single sample summary" `Quick test_single_sample;
    Alcotest.test_case "empty gap windows" `Quick test_empty_gap_windows;
    Alcotest.test_case "boundary rollover" `Quick test_boundary_rollover;
    Alcotest.test_case "decay to zero" `Quick test_decay_to_zero;
    Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "rate reading" `Quick test_rate_reading;
  ]

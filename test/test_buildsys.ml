open Testutil

(* --- Cache -------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Buildsys.Cache.create () in
  let key = Support.Digesting.of_string "k" in
  let calls = ref 0 in
  let compute () =
    incr calls;
    "artifact"
  in
  let v1, hit1 = Buildsys.Cache.find_or_add c key ~size:String.length compute in
  let v2, hit2 = Buildsys.Cache.find_or_add c key ~size:String.length compute in
  check ts "value" "artifact" v1;
  check ts "cached value" "artifact" v2;
  check tb "first is miss" false hit1;
  check tb "second is hit" true hit2;
  check ti "computed once" 1 !calls;
  check ti "hits" 1 (Buildsys.Cache.hits c);
  check ti "misses" 1 (Buildsys.Cache.misses c);
  check ti "stored bytes" 8 (Buildsys.Cache.stored_bytes c);
  check tb "hit rate" true (abs_float (Buildsys.Cache.hit_rate c -. 0.5) < 1e-9)

let test_cache_reset_stats () =
  let c = Buildsys.Cache.create () in
  let key = Support.Digesting.of_string "k" in
  ignore (Buildsys.Cache.find_or_add c key ~size:String.length (fun () -> "x"));
  Buildsys.Cache.reset_stats c;
  check ti "misses zeroed" 0 (Buildsys.Cache.misses c);
  (* Contents survive. *)
  let _, hit = Buildsys.Cache.find_or_add c key ~size:String.length (fun () -> "y") in
  check tb "contents kept" true hit

let test_cache_lru_eviction () =
  let c = Buildsys.Cache.create ~capacity_bytes:10 () in
  let key s = Support.Digesting.of_string s in
  let put k v = Buildsys.Cache.add c (key k) ~size:String.length v in
  put "a" "aaaa";
  put "b" "bbbb";
  (* Touch "a" so "b" is the LRU victim when "c" overflows the store. *)
  check tb "a present" true (Buildsys.Cache.find c (key "a") <> None);
  put "c" "cccc";
  check ti "one eviction" 1 (Buildsys.Cache.evictions c);
  check tb "LRU (b) evicted" false (Buildsys.Cache.mem c (key "b"));
  check tb "recently-used a survives" true (Buildsys.Cache.mem c (key "a"));
  check tb "newcomer c survives" true (Buildsys.Cache.mem c (key "c"));
  check ti "stored bytes tracks survivors" 8 (Buildsys.Cache.stored_bytes c);
  (* An artifact bigger than the whole capacity still stays: the
     just-added key is never its own victim. *)
  put "huge" "xxxxxxxxxxxxxxxxxxxx";
  check tb "oversized newcomer kept" true (Buildsys.Cache.mem c (key "huge"))

let test_cache_replace_same_key () =
  let c = Buildsys.Cache.create () in
  let key = Support.Digesting.of_string "k" in
  Buildsys.Cache.add c key ~size:String.length "aaaa";
  Buildsys.Cache.add c key ~size:String.length "bb";
  check ti "replacement recharges bytes" 2 (Buildsys.Cache.stored_bytes c);
  check ti "one entry" 1 (Buildsys.Cache.num_entries c);
  check Alcotest.(option string) "latest value wins" (Some "bb")
    (Buildsys.Cache.find c key)

(* --- Scheduler ---------------------------------------------------- *)

let action label cpu mem = { Buildsys.Scheduler.label; cpu_seconds = cpu; peak_mem_bytes = mem }

let test_scheduler_single_worker () =
  let r =
    Buildsys.Scheduler.schedule ~workers:1 [ action "a" 2.0 1; action "b" 3.0 2 ]
  in
  check tb "serial makespan" true (abs_float (r.wall_seconds -. 5.0) < 1e-9);
  check tb "total cpu" true (abs_float (r.cpu_seconds -. 5.0) < 1e-9);
  check ti "max mem" 2 r.max_action_mem

let test_scheduler_parallel () =
  let r =
    Buildsys.Scheduler.schedule ~workers:2
      [ action "a" 2.0 1; action "b" 3.0 1; action "c" 1.0 1 ]
  in
  (* LPT: b on w0, a on w1, c on w1 -> makespan 3. *)
  check tb "parallel makespan" true (abs_float (r.wall_seconds -. 3.0) < 1e-9)

let test_scheduler_mem_limit () =
  let r =
    Buildsys.Scheduler.schedule ~mem_limit:100 ~workers:4
      [ action "ok" 1.0 50; action "pig" 1.0 500 ]
  in
  check Alcotest.(list string) "offender flagged" [ "pig" ] r.over_limit

let test_scheduler_empty () =
  let r = Buildsys.Scheduler.schedule ~workers:8 [] in
  check tb "empty wall" true (r.wall_seconds = 0.0);
  check ti "no actions" 0 r.num_actions

let test_scheduler_critical_path () =
  let r =
    Buildsys.Scheduler.schedule ~workers:3
      [ action "a" 2.0 1; action "b" 7.5 1; action "c" 1.0 1 ]
  in
  check tb "critical path = longest action" true
    (abs_float (Buildsys.Scheduler.critical_path r -. 7.5) < 1e-9);
  check tb "empty schedule has zero critical path" true
    (Buildsys.Scheduler.critical_path (Buildsys.Scheduler.schedule ~workers:2 []) = 0.0)

let test_scheduler_plan_memo () =
  let actions = [ action "m1" 2.0 1; action "m2" 3.0 1; action "m3" 1.0 1 ] in
  let h0 = Buildsys.Scheduler.plan_memo_hits () in
  let r1 = Buildsys.Scheduler.schedule ~workers:2 actions in
  let h1 = Buildsys.Scheduler.plan_memo_hits () in
  let r2 = Buildsys.Scheduler.schedule ~workers:2 actions in
  let h2 = Buildsys.Scheduler.plan_memo_hits () in
  check ti "first plan is a memo miss" h0 h1;
  check ti "replanning the same actions hits the memo" (h1 + 1) h2;
  check tb "memoized plan is identical" true (r1.wall_seconds = r2.wall_seconds);
  check ti "same placements" (List.length r1.placements) (List.length r2.placements)

let scheduler_makespan_law =
  QCheck.Test.make ~count:150 ~name:"makespan bounds (LPT)"
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 1 30) (float_range 0.1 10.0)))
    (fun (workers, costs) ->
      let actions = List.mapi (fun i c -> action (string_of_int i) c 0) costs in
      let r = Buildsys.Scheduler.schedule ~workers actions in
      let total = List.fold_left ( +. ) 0.0 costs in
      let longest = List.fold_left max 0.0 costs in
      (* Makespan is at least max(total/workers, longest) and at most
         total. *)
      r.wall_seconds >= (total /. float_of_int workers) -. 1e-6
      && r.wall_seconds >= longest -. 1e-6
      && r.wall_seconds <= total +. 1e-6)

(* --- Driver + cache interaction ----------------------------------- *)

let test_build_caches_objects () =
  let _, program = medium_program () in
  let env = Buildsys.Driver.make_env () in
  let opts = Codegen.default_options in
  let r1 =
    Buildsys.Driver.build env ~name:"b1" ~program ~codegen_options:opts
      ~link_options:Linker.Link.default_options
  in
  check ti "first build misses everything" 0 r1.cache_hits;
  let r2 =
    Buildsys.Driver.build env ~name:"b2" ~program ~codegen_options:opts
      ~link_options:Linker.Link.default_options
  in
  check ti "second build all hits" 0 r2.cache_misses;
  check ti "hit count" (List.length r2.objs) r2.cache_hits;
  check tb "rebuild faster" true (r2.wall_seconds < r1.wall_seconds)

let test_plan_invalidates_only_its_unit () =
  let _, program = medium_program () in
  let env = Buildsys.Driver.make_env () in
  let opts = { Codegen.default_options with emit_bb_addr_map = true } in
  let r1 =
    Buildsys.Driver.build env ~name:"b1" ~program ~codegen_options:opts
      ~link_options:Linker.Link.default_options
  in
  ignore r1;
  (* Find some function and give it a trivial plan. *)
  let f =
    Ir.Program.fold_funcs program None (fun acc f ->
        match acc with Some _ -> acc | None -> if f.Ir.Func.name <> "main" then Some f else acc)
  in
  let f = Option.get f in
  let plan =
    {
      Codegen.Directive.func = f.name;
      clusters =
        [
          {
            Codegen.Directive.kind = Codegen.Directive.Primary;
            blocks = List.init (Ir.Func.num_blocks f) Fun.id;
          };
        ];
    }
  in
  let r2 =
    Buildsys.Driver.build env ~name:"b2" ~program
      ~codegen_options:{ opts with plans = [ plan ] }
      ~link_options:Linker.Link.default_options
  in
  check ti "exactly one unit recompiled" 1 r2.cache_misses;
  check ti "everything else cached" (List.length r2.objs - 1) r2.cache_hits

let test_unit_action_key_sensitivity () =
  let _, program = medium_program () in
  let u = List.hd (Ir.Program.units program) in
  let k1 = Buildsys.Driver.unit_action_key u Codegen.default_options in
  let k2 =
    Buildsys.Driver.unit_action_key u { Codegen.default_options with emit_bb_addr_map = true }
  in
  check tb "flags change key" false (Support.Digesting.equal k1 k2);
  (* A plan for a function NOT in this unit must not change the key. *)
  let foreign_plan =
    { Codegen.Directive.func = "zz_not_here";
      clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0 ] } ] }
  in
  let k3 = Buildsys.Driver.unit_action_key u { Codegen.default_options with plans = [ foreign_plan ] } in
  check tb "foreign plan does not invalidate" true (Support.Digesting.equal k1 k3)

let test_costmodel_monotonic () =
  check tb "codegen grows with code" true
    (Buildsys.Costmodel.codegen_seconds ~code_bytes:1_000_000
    > Buildsys.Costmodel.codegen_seconds ~code_bytes:1_000);
  check tb "wpa mem grows with dcfg" true
    (Buildsys.Costmodel.wpa_mem ~profile_bytes:0 ~dcfg_blocks:1_000_000 ~dcfg_edges:0
    > Buildsys.Costmodel.wpa_mem ~profile_bytes:0 ~dcfg_blocks:1_000 ~dcfg_edges:0);
  (* Chunked reading caps the profile contribution (5.1). *)
  let m1 = Buildsys.Costmodel.wpa_mem ~profile_bytes:(1 lsl 30) ~dcfg_blocks:0 ~dcfg_edges:0 in
  let m2 = Buildsys.Costmodel.wpa_mem ~profile_bytes:(1 lsl 33) ~dcfg_blocks:0 ~dcfg_edges:0 in
  check ti "profile reading is chunked" m1 m2

(* --- Fault injection (ISSUE 5) ------------------------------------ *)

let test_cache_find_verified () =
  let c = Buildsys.Cache.create () in
  let key = Support.Digesting.of_string "k" in
  let digest_of = Support.Digesting.of_string in
  Buildsys.Cache.add ~digest_of c key ~size:String.length "artifact";
  (match Buildsys.Cache.find_verified c key ~digest_of with
  | `Hit v -> check ts "verified hit" "artifact" v
  | `Miss | `Corrupt -> Alcotest.fail "fresh entry should verify");
  check tb "rot flips" true (Buildsys.Cache.corrupt c key);
  (match Buildsys.Cache.find_verified c key ~digest_of with
  | `Corrupt -> ()
  | `Hit _ -> Alcotest.fail "rotted entry must not verify"
  | `Miss -> Alcotest.fail "rot must be reported as corrupt, not a plain miss");
  check tb "evicted on detection" false (Buildsys.Cache.mem c key);
  check ti "corruption counted" 1 (Buildsys.Cache.corruptions c);
  (* The re-stored entry verifies again. *)
  Buildsys.Cache.add ~digest_of c key ~size:String.length "artifact";
  (match Buildsys.Cache.find_verified c key ~digest_of with
  | `Hit v -> check ts "re-stored entry verifies" "artifact" v
  | `Miss | `Corrupt -> Alcotest.fail "re-stored entry should verify");
  (* Entries stored without a digest are trusted hits. *)
  let key2 = Support.Digesting.of_string "k2" in
  Buildsys.Cache.add c key2 ~size:String.length "trusted";
  (match Buildsys.Cache.find_verified c key2 ~digest_of with
  | `Hit v -> check ts "undigested entry trusted" "trusted" v
  | `Miss | `Corrupt -> Alcotest.fail "undigested entry should hit");
  check tb "absent key cannot rot" false
    (Buildsys.Cache.corrupt c (Support.Digesting.of_string "nope"))

let test_scheduler_stragglers () =
  let plan = { Faultsim.Plan.default with straggle = 1.0; straggle_factor = 8.0 } in
  let r = Buildsys.Scheduler.schedule ~workers:1 ~faults:plan [ action "a" 2.0 1 ] in
  check ti "straggler counted" 1 r.Buildsys.Scheduler.stragglers;
  check ti "backup copy won" 1 r.Buildsys.Scheduler.speculated;
  (* Speculative re-issue caps an 8x straggler at 2x its nominal cost. *)
  check tb "slowdown capped at 2x" true (abs_float (r.wall_seconds -. 4.0) < 1e-9);
  let clean = Buildsys.Scheduler.schedule ~workers:1 [ action "a" 2.0 1 ] in
  check ti "no plan, no stragglers" 0 clean.Buildsys.Scheduler.stragglers

let faulted_env plan =
  Buildsys.Driver.make_env
    ~ctx:(Support.Ctx.create ~recorder:(Obs.Recorder.create ()) ~faults:plan ())
    ()

let default_build env ?(codegen = Codegen.default_options) name program =
  Buildsys.Driver.build env ~name ~program ~codegen_options:codegen
    ~link_options:Linker.Link.default_options

let test_build_retry_accounting () =
  let _, program = medium_program () in
  (* Every attempt fails; the plan forces success on attempt 3. *)
  let plan = { Faultsim.Plan.default with action_fail = 1.0; max_attempts = 3 } in
  let env = faulted_env plan in
  let r = default_build env "img" program in
  let units = List.length r.objs in
  check ti "two retries per unit" (2 * units) r.faults.retried;
  check ti "injected = failed attempts" (2 * units) r.faults.injected;
  check ti "retries alone degrade nothing" 0 r.faults.degraded;
  (* Backoff gaps 0.5 + 1.0 per unit, geometric from the defaults. *)
  check tb "backoff accumulated" true
    (abs_float (r.faults.backoff_seconds -. (1.5 *. float_of_int units)) < 1e-6);
  check tb "retries stretch the makespan" true
    (r.wall_seconds > (default_build (Buildsys.Driver.make_env ()) "r0" program).wall_seconds);
  (* degraded = 0 => the image is the fault-free image. *)
  let clean = default_build (Buildsys.Driver.make_env ()) "img" program in
  check tb "fault-free digest recovered" true
    (Support.Digesting.equal
       (Linker.Binary.image_digest r.binary)
       (Linker.Binary.image_digest clean.binary))

let test_build_corrupt_eviction () =
  let _, program = medium_program () in
  let plan = { Faultsim.Plan.default with corrupt = 1.0 } in
  let env = faulted_env plan in
  let r1 = default_build env "img" program in
  let units = List.length r1.objs in
  check ti "first build misses everything" units r1.cache_misses;
  (* Every stored entry rotted in place; the rebuild detects each one on
     its verified read, evicts it and recompiles from source. *)
  let r2 = default_build env "img" program in
  check ti "all rot caught" units r2.faults.corrupt_evicted;
  check ti "all recompiled" units r2.cache_misses;
  check ti "cache-level corruption accounting" units
    (Buildsys.Cache.corruptions env.obj_cache);
  check ti "recompiles do not degrade" 0 r2.faults.degraded;
  check tb "recompiled image byte-identical" true
    (Support.Digesting.equal
       (Linker.Binary.image_digest r1.binary)
       (Linker.Binary.image_digest r2.binary));
  (* Rot flips once per key: the entries re-stored after detection stay
     clean, so a third build is all hits. *)
  let r3 = default_build env "img" program in
  check ti "third build all hits" 0 r3.cache_misses;
  check ti "no further corruption" 0 r3.faults.corrupt_evicted

(* A layout plan that actually moves bytes: entry first, the remaining
   blocks reversed. *)
let reversal_plan (f : Ir.Func.t) =
  let n = Ir.Func.num_blocks f in
  {
    Codegen.Directive.func = f.name;
    clusters =
      [
        {
          Codegen.Directive.kind = Codegen.Directive.Primary;
          blocks = 0 :: List.rev (List.init (n - 1) (fun i -> i + 1));
        };
      ];
  }

let test_build_persistent_fallback () =
  let _, program = medium_program () in
  let plan = { Faultsim.Plan.default with persist = 1.0 } in
  let env = faulted_env plan in
  let r1 = default_build env "img" program in
  (* No last-good store yet, so the first build compiles everything. *)
  check ti "first build cannot fall back" 0 r1.faults.fallbacks;
  (* Invalidate one unit via a layout plan; its action persistently
     fails and the build degrades to the unit's base object. *)
  let f =
    Ir.Program.fold_funcs program None (fun acc f ->
        match acc with
        | Some _ -> acc
        | None -> if f.Ir.Func.name <> "main" && Ir.Func.num_blocks f >= 3 then Some f else acc)
  in
  let codegen =
    { Codegen.default_options with plans = [ reversal_plan (Option.get f) ] }
  in
  let r2 = default_build env ~codegen "img" program in
  check ti "one unit degraded" 1 r2.faults.degraded;
  check ti "fallbacks equal degraded" 1 r2.faults.fallbacks;
  check tb "attempt budget burned before giving up" true (r2.faults.retried > 0);
  check tb "link completes on the fallback object" true
    (Support.Digesting.equal
       (Linker.Binary.image_digest r2.binary)
       (Linker.Binary.image_digest r1.binary));
  (* The fallback was never cached under the failing key, so the same
     build degrades again instead of serving a poisoned hit ... *)
  let r3 = default_build env ~codegen "img" program in
  check ti "fallback not cached" 1 r3.faults.degraded;
  (* ... and a fault-free build of the same options produces different
     (re-laid-out) bytes than the degraded image. *)
  let clean = default_build (Buildsys.Driver.make_env ()) ~codegen "img" program in
  check tb "degradation visibly changed the image" false
    (Support.Digesting.equal
       (Linker.Binary.image_digest clean.binary)
       (Linker.Binary.image_digest r2.binary))

let suite =
  [
    Alcotest.test_case "cache: hit/miss accounting" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache: reset stats" `Quick test_cache_reset_stats;
    Alcotest.test_case "cache: LRU eviction under capacity" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache: same-key replacement" `Quick test_cache_replace_same_key;
    Alcotest.test_case "scheduler: single worker" `Quick test_scheduler_single_worker;
    Alcotest.test_case "scheduler: parallel" `Quick test_scheduler_parallel;
    Alcotest.test_case "scheduler: memory limit" `Quick test_scheduler_mem_limit;
    Alcotest.test_case "scheduler: empty" `Quick test_scheduler_empty;
    Alcotest.test_case "scheduler: critical path" `Quick test_scheduler_critical_path;
    Alcotest.test_case "scheduler: LPT plan memo" `Quick test_scheduler_plan_memo;
    QCheck_alcotest.to_alcotest scheduler_makespan_law;
    Alcotest.test_case "driver: rebuilds hit cache" `Quick test_build_caches_objects;
    Alcotest.test_case "driver: plans invalidate only their unit" `Quick test_plan_invalidates_only_its_unit;
    Alcotest.test_case "driver: action key sensitivity" `Quick test_unit_action_key_sensitivity;
    Alcotest.test_case "cost models monotonic" `Quick test_costmodel_monotonic;
    Alcotest.test_case "cache: digest-verified reads catch rot" `Quick test_cache_find_verified;
    Alcotest.test_case "scheduler: stragglers + speculation" `Quick test_scheduler_stragglers;
    Alcotest.test_case "driver: retry with backoff" `Quick test_build_retry_accounting;
    Alcotest.test_case "driver: corrupt entries evicted + recompiled" `Quick
      test_build_corrupt_eviction;
    Alcotest.test_case "driver: persistent failure falls back" `Quick
      test_build_persistent_fallback;
  ]

(* Cross-cutting property tests over randomly generated programs and
   randomly generated (valid) layout plans. *)

(* A generator of small valid programs via progen with random seeds. *)
let program_gen =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* units = int_range 2 6 in
    return (seed, units))

let program_arb =
  QCheck.make
    ~print:(fun (seed, units) -> Printf.sprintf "seed=%d units=%d" seed units)
    program_gen

let make_program (seed, units) =
  let spec =
    {
      (Option.get (Progen.Suite.by_name "505.mcf")) with
      Progen.Spec.name = "prop";
      seed = Int64.of_int seed;
      num_units = units;
      funcs_per_unit_mean = 6.0;
      blocks_per_func_mean = 8.0;
    }
  in
  Progen.Generate.program spec

(* A random valid plan for a function: a random permutation of a random
   subset of blocks, entry first. *)
let random_plan rng (f : Ir.Func.t) =
  let n = Ir.Func.num_blocks f in
  if n < 2 then None
  else begin
    let ids = Array.init (n - 1) (fun i -> i + 1) in
    Support.Rng.shuffle rng ids;
    let keep = 1 + Support.Rng.int rng (n - 1) in
    let prefix = Array.to_list (Array.sub ids 0 (min keep (n - 1))) in
    Some
      {
        Codegen.Directive.func = f.name;
        clusters =
          [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = 0 :: prefix } ];
      }
  end

let run_stats program plans =
  let objs = Codegen.compile_program { Codegen.default_options with plans } program in
  let { Linker.Link.binary; _ } = Linker.Link.link ~name:"p" ~entry:"main" objs in
  let image = Exec.Image.build program binary in
  Exec.Interp.run image { Exec.Interp.default_config with requests = 10 } Exec.Event.null

(* The flagship invariant: any valid re-layout preserves the logical
   trace (same blocks, calls, conditional branches, data-miss rolls). *)
let relayout_invariance_law =
  QCheck.Test.make ~count:25 ~name:"random cluster plans preserve the logical trace"
    program_arb
    (fun input ->
      let program = make_program input in
      let rng = Support.Rng.create (Int64.of_int (fst input + 999)) in
      let plans =
        Ir.Program.fold_funcs program [] (fun acc f ->
            match random_plan rng f with Some p -> p :: acc | None -> acc)
      in
      let s0 = run_stats program [] in
      let s1 = run_stats program plans in
      s0.blocks_executed = s1.blocks_executed
      && s0.calls = s1.calls
      && s0.cond_branches = s1.cond_branches
      && s0.dmisses + s0.dcovered = s1.dmisses + s1.dcovered)

(* Linking is deterministic: two identical links place every block at
   the same address. *)
let link_determinism_law =
  QCheck.Test.make ~count:20 ~name:"linking is deterministic" program_arb
    (fun input ->
      let program = make_program input in
      let build () =
        let objs = Codegen.compile_program Codegen.default_options program in
        (Linker.Link.link ~name:"d" ~entry:"main" objs).binary
      in
      let b1 = build () and b2 = build () in
      Hashtbl.fold
        (fun key (i1 : Linker.Binary.block_info) acc ->
          acc
          &&
          let i2 = Hashtbl.find b2.blocks key in
          i1.addr = i2.Linker.Binary.addr && i1.size = i2.Linker.Binary.size)
        b1.blocks true)

(* The PM binary's address map tells the truth: every entry matches the
   placed block exactly (offset and size), for random programs. *)
let bbmap_truth_law =
  QCheck.Test.make ~count:20 ~name:"bb address map matches final placement" program_arb
    (fun input ->
      let program = make_program input in
      let objs =
        Codegen.compile_program { Codegen.default_options with emit_bb_addr_map = true } program
      in
      let { Linker.Link.binary; _ } =
        Linker.Link.link
          ~options:{ Linker.Link.default_options with keep_bb_addr_map = true }
          ~name:"m" ~entry:"main" objs
      in
      List.for_all
        (fun (fm : Objfile.Bbmap.func_map) ->
          match Linker.Binary.symbol_addr binary fm.func with
          | None -> false
          | Some sym ->
            let owner = Objfile.Symname.owner fm.func in
            List.for_all
              (fun (e : Objfile.Bbmap.entry) ->
                match Linker.Binary.block_info binary ~func:owner ~block:e.bb_id with
                | Some info -> info.addr = sym + e.offset && info.size = e.size
                | None -> false)
              fm.entries)
        binary.bb_maps)

(* Relaxation only shrinks: relaxed text is never larger, and re-linking
   the relaxed order again is a fixpoint (same size). *)
let relax_monotone_law =
  QCheck.Test.make ~count:20 ~name:"relaxation shrinks text monotonically" program_arb
    (fun input ->
      let program = make_program input in
      let objs = Codegen.compile_program Codegen.default_options program in
      let link relax =
        (Linker.Link.link ~options:{ Linker.Link.default_options with relax } ~name:"r"
           ~entry:"main" objs)
          .binary
      in
      Linker.Binary.text_bytes (link true) <= Linker.Binary.text_bytes (link false))

(* Small programs can regress (the paper's SPEC sweep shows up to -3.9%
   on cache-resident benchmarks), but the pipeline must never be
   catastrophic. Random tiny programs have been observed slightly past
   5% (seed=6112/units=2 at 5.3%) and past 8% (seed=700/units=2 at
   8.3%, identical on pre- and post-flat-data trees), so the bound is
   10%. *)
let pipeline_no_regression_law =
  QCheck.Test.make ~count:8 ~name:"pipeline regression bounded (10%)" program_arb
    (fun input ->
      let program = make_program input in
      let env = Buildsys.Driver.make_env () in
      let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"b" in
      let prop =
        Propeller.Pipeline.run
          ~config:
            {
              Propeller.Pipeline.default_config with
              profile_run = { Exec.Interp.default_config with requests = 30 };
            }
          ~env ~program ~name:"p" ()
      in
      let cycles binary =
        let image = Exec.Image.build program binary in
        let core = Uarch.Core.create Uarch.Core.default_config in
        let (_ : Exec.Interp.stats) =
          Exec.Interp.run image
            { Exec.Interp.default_config with requests = 30 }
            (Uarch.Core.sink core)
        in
        Uarch.Core.cycles core
      in
      cycles (Propeller.Pipeline.optimized_binary prop) <= cycles base.binary *. 1.10)

(* The --jobs determinism contract: the full pipeline produces the same
   optimized image (and the same Ext-TSP score) at any pool width. *)
let jobs_invariance_law =
  QCheck.Test.make ~count:4 ~name:"pipeline output identical for jobs 1/2/8" program_arb
    (fun input ->
      let program = make_program input in
      let run jobs =
        Support.Pool.with_pool ~jobs (fun pool ->
            let recorder = Obs.Recorder.create () in
            let env =
              Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ~pool ()) ()
            in
            let r =
              Propeller.Pipeline.run
                ~config:
                  {
                    Propeller.Pipeline.default_config with
                    profile_run = { Exec.Interp.default_config with requests = 10 };
                  }
                ~env ~program ~name:"jobs" ()
            in
            ( Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary r),
              r.wpa.layout_score ))
      in
      let d1, s1 = run 1 in
      let d2, s2 = run 2 in
      let d8, s8 = run 8 in
      Support.Digesting.equal d1 d2
      && Support.Digesting.equal d1 d8
      && Float.equal s1 s2 && Float.equal s1 s8)

(* The fault-tolerance contract (ISSUE 5): a seeded fault plan replays
   byte-identically, and unless something actually degraded (a fallback
   object or a hot function lost to a dropped shard), the faulted
   pipeline produces exactly the fault-free image. *)
let fault_tolerance_law =
  QCheck.Test.make ~count:5
    ~name:"faulted relink: replay identical; degraded=0 => fault-free digest"
    QCheck.(pair program_arb (int_range 1 10_000))
    (fun (input, fault_seed) ->
      let program = make_program input in
      let plan =
        {
          Faultsim.Plan.default with
          seed = fault_seed;
          action_fail = 0.3;
          persist = 0.15;
          straggle = 0.2;
          corrupt = 0.3;
          shard_drop = 0.2;
          shards = 8;
        }
      in
      let run faults =
        let recorder = Obs.Recorder.create () in
        let env =
          Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ?faults ()) ()
        in
        let r =
          Propeller.Pipeline.run
            ~config:
              {
                Propeller.Pipeline.default_config with
                profile_run = { Exec.Interp.default_config with requests = 10 };
              }
            ~env ~program ~name:"law" ()
        in
        let degraded =
          r.metadata_build.faults.degraded + r.optimized_build.faults.degraded
          + r.wpa.dropped_hot_funcs
        in
        (Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary r), degraded)
      in
      let d0, deg0 = run None in
      let d1, deg1 = run (Some plan) in
      let d2, deg2 = run (Some plan) in
      deg0 = 0
      && Support.Digesting.equal d1 d2
      && deg1 = deg2
      && (deg1 > 0 || Support.Digesting.equal d0 d1))

(* The self-observability contract (ISSUE 6): enabling span-attributed
   host-clock/GC profiling is purely additive — the optimized image and
   every simulated metric are byte-identical with it on or off. *)
let selfprof_invariance_law =
  QCheck.Test.make ~count:5
    ~name:"self-profiling never changes digests or simulated metrics" program_arb
    (fun input ->
      let program = make_program input in
      let run self_profile =
        Support.Pool.with_pool ~jobs:1 (fun pool ->
            let recorder = Obs.Recorder.create () in
            if self_profile then Obs.Recorder.enable_self_profile recorder;
            let env =
              Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ~pool ()) ()
            in
            let r =
              Propeller.Pipeline.run
                ~config:
                  {
                    Propeller.Pipeline.default_config with
                    profile_run = { Exec.Interp.default_config with requests = 10 };
                  }
                ~env ~program ~name:"selfprof" ()
            in
            ( Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary r),
              Obs.Recorder.metrics_json recorder,
              Obs.Flight.dump (Obs.Recorder.flight recorder) ))
      in
      let d_off, m_off, f_off = run false in
      let d_on, m_on, f_on = run true in
      (* The profiled run really profiled something; it still changed
         no simulated output, including the flight dump text. *)
      Support.Digesting.equal d_off d_on
      && String.equal m_off m_on
      && String.equal f_off f_on)

(* The sampled-profile robustness contract (ISSUE 8): whatever the
   sampling period, jitter, or seed, the Sampled pipeline never crashes,
   and every synthesized weight is a positive in-range count — even when
   the period is so long that whole functions draw zero samples. *)
let sampler_period_law =
  QCheck.Test.make ~count:6
    ~name:"sampled pipeline total for any period/jitter/seed; weights in range"
    QCheck.(pair program_arb (triple (int_range 1 400) (int_range 0 90) (int_range 0 1000)))
    (fun (input, (period, jitter_pct, seed)) ->
      let program = make_program input in
      let recorder = Obs.Recorder.create () in
      let env =
        Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ()) ()
      in
      let r =
        Propeller.Pipeline.run
          ~config:
            {
              Propeller.Pipeline.default_config with
              profile_run = { Exec.Interp.default_config with requests = 10 };
              profile_source = Perfmon.Source.Sampled;
              sampler = { Perfmon.Sampler.default_config with period; jitter_pct; seed };
            }
          ~env ~program ~name:"sampled" ()
      in
      let ok = ref (r.profile.Perfmon.Lbr.num_records >= 0) in
      let bound = 1_000_000_000 in
      Support.Itab.iter
        (fun _ w -> if w < 1 || w > bound then ok := false)
        r.profile.Perfmon.Lbr.branches;
      Support.Itab.iter
        (fun _ w -> if w < 1 || w > bound then ok := false)
        r.profile.Perfmon.Lbr.ranges;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest relayout_invariance_law;
    QCheck_alcotest.to_alcotest link_determinism_law;
    QCheck_alcotest.to_alcotest bbmap_truth_law;
    QCheck_alcotest.to_alcotest relax_monotone_law;
    QCheck_alcotest.to_alcotest pipeline_no_regression_law;
    QCheck_alcotest.to_alcotest jobs_invariance_law;
    QCheck_alcotest.to_alcotest fault_tolerance_law;
    QCheck_alcotest.to_alcotest selfprof_invariance_law;
    QCheck_alcotest.to_alcotest sampler_period_law;
  ]

open Testutil

(* End-to-end scenarios exercising several subsystems together. *)

let test_progen_shape () =
  let spec = Option.get (Progen.Suite.by_name "505.mcf") in
  let program = Progen.Generate.program spec in
  (* Calibration against Table 2's mcf row: 80 funcs, ~1K blocks,
     ~34KB text — generated values should land within 30%. *)
  let funcs = Ir.Program.num_funcs program in
  let blocks = Ir.Program.num_blocks program in
  check tb "funcs near 80" true (funcs > 50 && funcs < 110);
  check tb "blocks near 1K" true (blocks > 700 && blocks < 1500);
  check tb "main exists" true (Option.is_some (Ir.Program.find_func program "main"))

let test_progen_deterministic () =
  let spec = Option.get (Progen.Suite.by_name "505.mcf") in
  let p1 = Progen.Generate.program spec in
  let p2 = Progen.Generate.program spec in
  check ti "same funcs" (Ir.Program.num_funcs p1) (Ir.Program.num_funcs p2);
  check ti "same blocks" (Ir.Program.num_blocks p1) (Ir.Program.num_blocks p2);
  check ti "same bytes" (Ir.Program.code_bytes p1) (Ir.Program.code_bytes p2)

let test_progen_cold_units () =
  let spec, program = medium_program () in
  let hot = Progen.Generate.hot_units spec in
  check tb "some units cold" true (hot < List.length (Ir.Program.units program))

let test_pm_layout_matches_baseline () =
  (* The metadata build must not perturb the text layout: profiles
     taken on PM apply to the baseline/BM binaries (5 methodology). *)
  let _, program = medium_program () in
  let _, { Linker.Link.binary = base; _ } = compile_and_link program in
  let _, { Linker.Link.binary = pm; _ } = metadata_link program in
  Hashtbl.iter
    (fun key (b : Linker.Binary.block_info) ->
      let p = Hashtbl.find pm.blocks key in
      check ti "same addr" b.addr p.Linker.Binary.addr;
      check ti "same size" b.size p.Linker.Binary.size)
    base.blocks

let test_profile_addresses_all_map () =
  (* Every LBR destination must resolve through the BB address map:
     the no-disassembly pipeline loses nothing. *)
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let _, profile = run_with_profile ~requests:30 program binary in
  let dcfg = Propeller.Dcfg.build ~profile ~binary in
  let unmapped = ref 0 and total = ref 0 in
  Perfmon.Lbr.iter_pairs
    (fun ~src:_ ~dst _ ->
      incr total;
      if Propeller.Dcfg.find_block dcfg dst = None then incr unmapped)
    profile.branches;
  check ti "every LBR destination maps to a block" 0 !unmapped;
  check tb "profile nonempty" true (!total > 0)

let test_propeller_improves_frontend_counters () =
  (* On a mid-sized program with cold paths, Propeller must cut iTLB
     misses (the 4.6 effect) and not increase taken branches. *)
  let spec, program = medium_program ~seed:99L () in
  let env = Buildsys.Driver.make_env () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"b" in
  let prop =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests = spec.requests };
        }
      ~env ~program ~name:"p" ()
  in
  let counters binary =
    let image = Exec.Image.build program binary in
    let core = Uarch.Core.create Uarch.Core.default_config in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image
        { Exec.Interp.default_config with requests = spec.requests }
        (Uarch.Core.sink core)
    in
    Uarch.Core.counters core
  in
  let cb = counters base.binary in
  let cp = counters (Propeller.Pipeline.optimized_binary prop) in
  check tb "taken branches do not increase" true
    (cp.b2_taken_branches <= cb.b2_taken_branches);
  check tb "L1i misses do not increase" true (cp.i1_l1i_miss <= cb.i1_l1i_miss)

let test_full_cycle_determinism () =
  (* The whole pipeline is reproducible end to end. *)
  let run () =
    let spec, program = medium_program ~seed:5L () in
    let env = Buildsys.Driver.make_env () in
    let prop =
      Propeller.Pipeline.run
        ~config:
          {
            Propeller.Pipeline.default_config with
            profile_run = { Exec.Interp.default_config with requests = spec.requests };
          }
        ~env ~program ~name:"d" ()
    in
    ( prop.wpa.hot_funcs,
      prop.wpa.dcfg_blocks,
      prop.hot_objects,
      Linker.Binary.total_size (Propeller.Pipeline.optimized_binary prop) )
  in
  check tb "two full runs agree" true (run () = run ())

let test_exploded_sections_cost_more () =
  (* The 4.1 cluster rationale: one section per block inflates objects
     and link inputs. *)
  let _, program = medium_program () in
  let all_bb_plans =
    Ir.Program.fold_funcs program [] (fun acc f ->
        if Ir.Func.num_blocks f < 2 then acc
        else begin
          let clusters =
            List.init (Ir.Func.num_blocks f) (fun b ->
                if b = 0 then { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0 ] }
                else { Codegen.Directive.kind = Codegen.Directive.Extra b; blocks = [ b ] })
          in
          { Codegen.Directive.func = f.name; clusters } :: acc
        end)
  in
  let objs_plain = Codegen.compile_program Codegen.default_options program in
  let objs_exploded =
    Codegen.compile_program { Codegen.default_options with plans = all_bb_plans } program
  in
  let total objs = List.fold_left (fun a o -> a + Objfile.File.total_size o) 0 objs in
  let sections objs =
    List.fold_left (fun a o -> a + Objfile.File.num_text_sections o) 0 objs
  in
  check tb "exploded objects bigger" true (total objs_exploded > total objs_plain);
  check tb "way more sections" true (sections objs_exploded > 4 * sections objs_plain)

let test_table3_shape_mcf () =
  (* The SPEC regression mechanism: on a cache-resident benchmark the
     gains are tiny (within +-2%), unlike warehouse apps. *)
  let spec = { (Option.get (Progen.Suite.by_name "505.mcf")) with Progen.Spec.requests = 60 } in
  let program = Progen.Generate.program spec in
  let env = Buildsys.Driver.make_env () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"mcf.b" in
  let prop =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests = 60 };
        }
      ~env ~program ~name:"mcf.p" ()
  in
  let cycles binary =
    let image = Exec.Image.build program binary in
    let core = Uarch.Core.create Uarch.Core.default_config in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image { Exec.Interp.default_config with requests = 60 } (Uarch.Core.sink core)
    in
    Uarch.Core.cycles core
  in
  let delta =
    (cycles base.binary -. cycles (Propeller.Pipeline.optimized_binary prop))
    /. cycles base.binary *. 100.0
  in
  check tb "small-program delta within +-2%" true (abs_float delta < 2.0)

let suite =
  [
    Alcotest.test_case "progen: table-2 shape" `Quick test_progen_shape;
    Alcotest.test_case "progen: deterministic" `Quick test_progen_deterministic;
    Alcotest.test_case "progen: cold units" `Quick test_progen_cold_units;
    Alcotest.test_case "PM layout matches baseline" `Quick test_pm_layout_matches_baseline;
    Alcotest.test_case "profile addresses all map" `Quick test_profile_addresses_all_map;
    Alcotest.test_case "propeller improves frontend counters" `Slow test_propeller_improves_frontend_counters;
    Alcotest.test_case "full-cycle determinism" `Slow test_full_cycle_determinism;
    Alcotest.test_case "exploded sections cost more" `Quick test_exploded_sections_cost_more;
    Alcotest.test_case "mcf: small-program shape" `Slow test_table3_shape_mcf;
  ]

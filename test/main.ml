let () =
  Alcotest.run "propeller"
    [
      ("support", Test_support.suite);
      ("faultsim", Test_faultsim.suite);
      ("pool", Test_pool.suite);
      ("isa", Test_isa.suite);
      ("ir", Test_ir.suite);
      ("layout", Test_layout.suite);
      ("objfile", Test_objfile.suite);
      ("codegen", Test_codegen.suite);
      ("inline", Test_inline.suite);
      ("linker", Test_linker.suite);
      ("exec", Test_exec.suite);
      ("perfmon", Test_perfmon.suite);
      ("uarch", Test_uarch.suite);
      ("obs", Test_obs.suite);
      ("timeseries", Test_timeseries.suite);
      ("selfprof", Test_selfprof.suite);
      ("buildsys", Test_buildsys.suite);
      ("propeller", Test_propeller.suite);
      ("prefetch", Test_prefetch.suite);
      ("boltsim", Test_boltsim.suite);
      ("diagnostics", Test_diagnostics.suite);
      ("inspect", Test_inspect.suite);
      ("integration", Test_integration.suite);
      ("fleet", Test_fleet.suite);
      ("properties", Test_properties.suite);
    ]

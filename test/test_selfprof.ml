open Testutil

(* --- Hostclock ---------------------------------------------------- *)

let test_hostclock_monotone () =
  let prev = ref (Obs.Hostclock.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.Hostclock.now () in
    if t < !prev then Alcotest.failf "host clock went backwards: %.9f < %.9f" t !prev;
    prev := t
  done

let test_gc_delta_monotone () =
  (* Empty the minor heap first: words allocated by *earlier* tests
     that get promoted inside the measured interval would deflate
     allocated_words (promoted is subtracted, but their allocation was
     counted before the interval began). *)
  Gc.full_major ();
  let before = Obs.Hostclock.gc_snapshot () in
  (* Allocate enough to move the minor counter for sure. *)
  let keep = ref [] in
  for i = 1 to 10_000 do
    keep := (i, float_of_int i) :: !keep
  done;
  ignore (List.length !keep);
  let after = Obs.Hostclock.gc_snapshot () in
  let d = Obs.Hostclock.gc_delta ~before ~after in
  check tb "minor words grew" true (d.Obs.Hostclock.minor_words > 0.0);
  check tb "allocated_words positive" true (Obs.Hostclock.allocated_words d > 0.0);
  (* Swapped arguments clamp to zero instead of going negative. *)
  let swapped = Obs.Hostclock.gc_delta ~before:after ~after:before in
  check tb "clamped minor" true (swapped.Obs.Hostclock.minor_words >= 0.0);
  check tb "clamped major" true (swapped.Obs.Hostclock.major_words >= 0.0);
  check ti "clamped minor collections" 0
    (min 0 swapped.Obs.Hostclock.minor_collections);
  check tb "clamped allocated" true (Obs.Hostclock.allocated_words swapped >= 0.0)

(* --- Flight ring buffer ------------------------------------------- *)

let test_flight_wraparound () =
  let f = Obs.Flight.create ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Flight.record f ~sim:(float_of_int i) Obs.Flight.Note
      (Printf.sprintf "e%d" i) "d"
  done;
  check ti "total recorded uncapped" 10 (Obs.Flight.recorded f);
  let evs = Obs.Flight.events f in
  check ti "ring keeps capacity" 4 (List.length evs);
  check (Alcotest.list ti) "last K survive, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Obs.Flight.event) -> e.seq) evs);
  check (Alcotest.list ts) "names follow seqs" [ "e6"; "e7"; "e8"; "e9" ]
    (List.map (fun (e : Obs.Flight.event) -> e.name) evs)

let test_flight_dump_deterministic () =
  (* Two identical instrumented runs: the dump text must be
     byte-identical (host times are excluded by design). *)
  let run () =
    let r = Obs.Recorder.create ~flight_capacity:8 () in
    Obs.Recorder.with_span r "build" (fun () ->
        Obs.Recorder.advance r 1.5;
        Obs.Recorder.incr_counter r "cache.hits";
        Obs.Recorder.with_span r "link" (fun () -> Obs.Recorder.advance r 0.25));
    Obs.Recorder.flight_note r "fault.fallback" "unit3";
    Obs.Recorder.flight_dump r
  in
  let a = run () and b = run () in
  check ts "identical dumps" a b;
  check tb "dump mentions the note" true
    (let s = a in
     let rec find i =
       i + 14 <= String.length s && (String.sub s i 14 = "fault.fallback" || find (i + 1))
     in
     find 0)

let test_flight_json_roundtrips () =
  let f = Obs.Flight.create ~capacity:4 () in
  Obs.Flight.record f ~sim:0.5 Obs.Flight.Counter "c" "+1";
  let s = Obs.Json.to_string (Obs.Flight.to_json f) in
  match Obs.Json.parse s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "flight JSON does not re-parse: %s" e

(* --- Selfprof ----------------------------------------------------- *)

let test_disabled_profiler_records_nothing () =
  let sp = Obs.Selfprof.create () in
  check tb "disabled by default" false (Obs.Selfprof.enabled sp);
  check tb "enter yields no frame" true (Obs.Selfprof.enter sp "x" = None);
  Obs.Selfprof.leave sp None;
  let v = Obs.Selfprof.with_span sp "y" (fun () -> 42) in
  check ti "with_span passes value through" 42 v;
  check ti "no paths" 0 (Obs.Selfprof.num_paths sp);
  check ts "empty folded" "" (Obs.Selfprof.folded sp)

let spin () =
  (* Burn a little host time and allocation so deltas are non-zero. *)
  let acc = ref [] in
  for i = 1 to 2_000 do
    acc := string_of_int i :: !acc
  done;
  ignore (List.length !acc)

let profiled_structure () =
  let sp = Obs.Selfprof.create () in
  Obs.Selfprof.enable sp;
  Obs.Selfprof.with_span sp "round" (fun () ->
      spin ();
      Obs.Selfprof.with_span sp "wpa" (fun () -> spin ());
      Obs.Selfprof.with_span sp "link" (fun () -> spin ()));
  Obs.Selfprof.with_span sp "round" (fun () -> spin ());
  sp

let test_paths_and_counts () =
  let sp = profiled_structure () in
  let rows = Obs.Selfprof.rows sp in
  check (Alcotest.list ts) "paths sorted, stack-joined"
    [ "round"; "round;link"; "round;wpa" ]
    (List.map (fun (r : Obs.Selfprof.row) -> r.path) rows);
  check (Alcotest.list ts) "leaf names" [ "round"; "link"; "wpa" ]
    (List.map (fun (r : Obs.Selfprof.row) -> r.name) rows);
  check (Alcotest.list ti) "counts" [ 2; 1; 1 ]
    (List.map (fun (r : Obs.Selfprof.row) -> r.count) rows);
  List.iter
    (fun (r : Obs.Selfprof.row) ->
      check tb (r.path ^ ": self host within inclusive") true
        (r.self_host_s >= 0.0 && r.self_host_s <= r.host_s +. 1e-9);
      check tb (r.path ^ ": self alloc within inclusive") true
        (r.self_alloc_words >= 0.0 && r.self_alloc_words <= r.alloc_words +. 1.0))
    rows;
  (* The parent's self excludes the children: inclusive parent time
     covers at least the children's inclusive time. *)
  let find p = List.find (fun (r : Obs.Selfprof.row) -> r.path = p) rows in
  let round = find "round" and wpa = find "round;wpa" and link = find "round;link" in
  check tb "parent inclusive >= children inclusive" true
    (round.host_s +. 1e-9 >= wpa.host_s +. link.host_s)

let test_exception_closes_frame () =
  let sp = Obs.Selfprof.create () in
  Obs.Selfprof.enable sp;
  (try Obs.Selfprof.with_span sp "boom" (fun () -> failwith "inner") with Failure _ -> ());
  Obs.Selfprof.with_span sp "after" (fun () -> ());
  check (Alcotest.list ts) "frame popped despite raise" [ "after"; "boom" ]
    (List.map
       (fun (r : Obs.Selfprof.row) -> r.path)
       (Obs.Selfprof.rows sp))

(* Strip the numeric weight from each folded line, leaving the path
   structure — the deterministic part of the contract. *)
let folded_paths s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match String.rindex_opt l ' ' with
         | Some i -> String.sub l 0 i
         | None -> l)

let test_folded_deterministic_modulo_weights () =
  let a = profiled_structure () and b = profiled_structure () in
  check (Alcotest.list ts) "folded structure identical across runs"
    (folded_paths (Obs.Selfprof.folded a))
    (folded_paths (Obs.Selfprof.folded b));
  check (Alcotest.list ts) "host and alloc weighting share structure"
    (folded_paths (Obs.Selfprof.folded ~weight:`Host a))
    (folded_paths (Obs.Selfprof.folded ~weight:`Alloc a));
  (* Weights are integers >= 0, one per line. *)
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "folded line without weight: %s" l
      | Some i -> (
        let w = String.sub l (i + 1) (String.length l - i - 1) in
        match float_of_string_opt w with
        | Some f when f >= 0.0 -> ()
        | _ -> Alcotest.failf "bad folded weight %S in %S" w l))
    (String.split_on_char '\n' (Obs.Selfprof.folded a)
    |> List.filter (fun l -> l <> ""))

let test_hotspot_ranking () =
  let row ~path ~name ~self ~alloc =
    {
      Obs.Selfprof.path;
      name;
      count = 1;
      host_s = self;
      self_host_s = self;
      alloc_words = alloc;
      self_alloc_words = alloc;
      minor_words = alloc;
      major_words = 0.0;
      promoted_words = 0.0;
      minor_collections = 0;
      major_collections = 0;
    }
  in
  let rows =
    [
      row ~path:"a;slow" ~name:"slow" ~self:3.0 ~alloc:10.0;
      row ~path:"a;fast" ~name:"fast" ~self:0.5 ~alloc:99.0;
      (* Same leaf name under two paths merges into one hotspot. *)
      row ~path:"b;slow" ~name:"slow" ~self:2.0 ~alloc:10.0;
      row ~path:"a;tie1" ~name:"tie1" ~self:1.0 ~alloc:5.0;
      row ~path:"a;tie2" ~name:"tie2" ~self:1.0 ~alloc:50.0;
    ]
  in
  let hs = Obs.Selfprof.hotspots_of_rows rows in
  check (Alcotest.list ts) "ranked by self host, alloc breaks ties"
    [ "slow"; "tie2"; "tie1"; "fast" ]
    (List.map (fun (h : Obs.Selfprof.hotspot) -> h.hname) hs);
  let slow = List.hd hs in
  check ti "merged count" 2 slow.Obs.Selfprof.hcount;
  check tf "merged self host" 5.0 slow.Obs.Selfprof.hself_host_s;
  let hs1 = Obs.Selfprof.hotspots_of_rows ~limit:2 rows in
  check ti "limit respected" 2 (List.length hs1);
  (* The rendered table mentions every surviving hotspot. *)
  let table = Obs.Selfprof.render_hotspots hs in
  List.iter
    (fun (h : Obs.Selfprof.hotspot) ->
      let name = h.hname in
      let rec find i =
        i + String.length name <= String.length table
        && (String.sub table i (String.length name) = name || find (i + 1))
      in
      check tb (name ^ " in table") true (find 0))
    hs

let test_json_roundtrip () =
  let sp = profiled_structure () in
  let json = Obs.Selfprof.to_json sp in
  (* Survives our own serializer (what --self-profile-out writes). *)
  let reparsed =
    match Obs.Json.parse (Obs.Json.to_string json) with
    | Ok v -> v
    | Error e -> Alcotest.failf "self-profile JSON does not re-parse: %s" e
  in
  match Obs.Selfprof.rows_of_json reparsed with
  | Error e -> Alcotest.failf "rows_of_json: %s" e
  | Ok rows ->
    let orig = Obs.Selfprof.rows sp in
    check ti "row count" (List.length orig) (List.length rows);
    List.iter2
      (fun (a : Obs.Selfprof.row) (b : Obs.Selfprof.row) ->
        check ts "path" a.path b.path;
        check ts "name" a.name b.name;
        check ti "count" a.count b.count;
        check tb "host close" true (Float.abs (a.host_s -. b.host_s) < 1e-6);
        check tb "alloc close" true (Float.abs (a.alloc_words -. b.alloc_words) < 1.0))
      orig rows;
    (* Junk input errors instead of raising. *)
    (match Obs.Selfprof.rows_of_json (Obs.Json.String "nope") with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "rows_of_json must reject non-profiles")

(* --- Recorder integration ----------------------------------------- *)

let test_recorder_selfprof_integration () =
  let r = Obs.Recorder.create () in
  check tb "off by default" false (Obs.Recorder.self_profile_enabled r);
  Obs.Recorder.with_span r "cold" (fun () -> ());
  check ti "disabled spans leave no paths" 0
    (Obs.Selfprof.num_paths (Obs.Recorder.selfprof r));
  Obs.Recorder.enable_self_profile r;
  Obs.Recorder.with_span r "warm" (fun () -> spin ());
  check (Alcotest.list ts) "enabled spans recorded" [ "warm" ]
    (List.map
       (fun (row : Obs.Selfprof.row) -> row.path)
       (Obs.Selfprof.rows (Obs.Recorder.selfprof r)));
  (* Reset drops the data but keeps the scope usable. *)
  Obs.Recorder.reset r;
  check ti "reset clears selfprof" 0 (Obs.Selfprof.num_paths (Obs.Recorder.selfprof r));
  check ti "reset clears flight" 0 (Obs.Flight.recorded (Obs.Recorder.flight r))

let suite =
  [
    Alcotest.test_case "hostclock: monotone" `Quick test_hostclock_monotone;
    Alcotest.test_case "hostclock: gc delta monotone" `Quick test_gc_delta_monotone;
    Alcotest.test_case "flight: ring wraparound" `Quick test_flight_wraparound;
    Alcotest.test_case "flight: dump deterministic" `Quick test_flight_dump_deterministic;
    Alcotest.test_case "flight: JSON round-trips" `Quick test_flight_json_roundtrips;
    Alcotest.test_case "selfprof: disabled is inert" `Quick
      test_disabled_profiler_records_nothing;
    Alcotest.test_case "selfprof: paths and counts" `Quick test_paths_and_counts;
    Alcotest.test_case "selfprof: exception safety" `Quick test_exception_closes_frame;
    Alcotest.test_case "selfprof: folded structure deterministic" `Quick
      test_folded_deterministic_modulo_weights;
    Alcotest.test_case "selfprof: hotspot ranking" `Quick test_hotspot_ranking;
    Alcotest.test_case "selfprof: JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "selfprof: recorder integration" `Quick
      test_recorder_selfprof_integration;
  ]

open Testutil

(* --- The fleet telemetry plane: Machine / Aggregate / Rollout ----- *)

(* A small shape so fleet runs stay quick; steady traffic and dense
   sampling make the relink loop's fixed point reachable in-test. *)
let fleet_spec =
  {
    (Option.get (Progen.Suite.by_name "505.mcf")) with
    Progen.Spec.name = "fleetprog";
    num_units = 3;
    requests = 20;
  }

let quiesced ~cycles ?sabotage_cycle () =
  {
    Fleet.Rollout.default_config with
    machines = 3;
    cycles;
    canary = 1;
    requests = 20;
    jitter_pct = 0.0;
    window = 1;
    sabotage_cycle;
    lbr = { Fleet.Rollout.default_config.lbr with Perfmon.Lbr.period = 1 };
  }

let run_fleet ?(jobs = 1) ~config () =
  let recorder = Obs.Recorder.create () in
  let ctx = Support.Ctx.create ~recorder ~jobs () in
  let program = Progen.Generate.program fleet_spec in
  let result = Fleet.Rollout.run ~config ~ctx ~program ~name:fleet_spec.name () in
  (result, recorder)

let test_deterministic_across_jobs () =
  let config = quiesced ~cycles:2 () in
  let r1, _ = run_fleet ~jobs:1 ~config () in
  let r2, _ = run_fleet ~jobs:2 ~config () in
  check ts "JSON report identical at jobs 1 and 2"
    (Obs.Json.to_string (Fleet.Rollout.to_json r1))
    (Obs.Json.to_string (Fleet.Rollout.to_json r2));
  check ts "health report identical" (Fleet.Rollout.report r1) (Fleet.Rollout.report r2)

(* Convergence needs real margins: on toy shapes the LBR ring's
   end-of-run tail adds +/-1 count noise that can flip Ext-TSP
   near-ties forever.  The full 505.mcf shape has wide margins and
   reaches its fixed point after exactly two relinks. *)
let test_converges_within_two_relinks () =
  let spec =
    { (Option.get (Progen.Suite.by_name "505.mcf")) with Progen.Spec.name = "fleetprog" }
  in
  let config =
    {
      Fleet.Rollout.default_config with
      machines = 4;
      cycles = 4;
      canary = 1;
      requests = 60;
      jitter_pct = 0.0;
      window = 1;
      sabotage_cycle = None;
      lbr = { Fleet.Rollout.default_config.lbr with Perfmon.Lbr.period = 1 };
    }
  in
  let recorder = Obs.Recorder.create () in
  let ctx = Support.Ctx.create ~recorder ~jobs:1 () in
  let program = Progen.Generate.program spec in
  let r = Fleet.Rollout.run ~config ~ctx ~program ~name:spec.name () in
  check tb "fleet converged" true r.Fleet.Rollout.converged;
  (match r.converged_after_relinks with
  | Some n -> check tb "within two relinks" true (n <= 2)
  | None -> Alcotest.fail "converged without a relink count");
  (* Once converged, the loop stays converged: the canonical aggregate
     is a fixed point under steady traffic. *)
  let last = List.nth r.reports (List.length r.reports - 1) in
  check tb "last cycle still converged" true (last.verdict = Fleet.Rollout.Converged);
  check ts "candidate digest is the deployed digest" r.final_digest last.candidate_digest

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_sabotage_rolls_back () =
  let config = quiesced ~cycles:2 ~sabotage_cycle:2 () in
  let r, recorder = run_fleet ~config () in
  check ti "one rollback" 1 r.Fleet.Rollout.rollbacks;
  let c2 = List.nth r.reports 1 in
  check tb "cycle 2 rolled back" true (c2.verdict = Fleet.Rollout.Rolled_back);
  (match c2.judged with
  | None -> Alcotest.fail "rollback must carry a judgment"
  | Some o -> check tb "judge saw a regression" false (Diagnostics.Compare.ok o));
  check tb "verdict in the health report" true (contains (Fleet.Rollout.report r) "rolled_back");
  check tb "verdict in the flight dump" true
    (contains (Obs.Recorder.flight_dump recorder) "fleet.rollback");
  (* The sabotaged candidate never reached the fleet. *)
  check ts "deployed digest is the promoted gen-1 image" r.final_digest
    (List.nth r.reports 0).candidate_digest

(* --- Aggregate: order independence -------------------------------- *)

(* Shards from two different layouts of the same program: the stale
   half must translate through the canonical decode/encode path. *)
let mixed_shards () =
  let program = Progen.Generate.program fleet_spec in
  let ctx = Support.Ctx.create ~recorder:(Obs.Recorder.create ()) ~jobs:1 () in
  let env = Buildsys.Driver.make_env ~ctx () in
  let cg_meta, ld_meta = Propeller.Pipeline.metadata_options in
  let build name cg ld =
    Buildsys.Driver.build env ~name ~program ~codegen_options:cg ~link_options:ld
  in
  let gen0 = build "aggprog.fleet" cg_meta ld_meta in
  let lbr = { Perfmon.Lbr.default_config with period = 1 } in
  let clock = Obs.Clock.create () in
  let serve binary id =
    let m =
      Fleet.Machine.create ~id ~program ~core_config:Uarch.Core.default_config ~clock
        ~generation:0 binary
    in
    Fleet.Machine.serve ~ctx m ~lbr ~requests:15
  in
  let shard0 = serve gen0.Buildsys.Driver.binary 0 in
  let wpa =
    Propeller.Wpa.analyze ~ctx ~profile:(Propeller.Wpa.Lbr shard0.Fleet.Machine.profile)
      ~binary:gen0.Buildsys.Driver.binary ()
  in
  let gen1 =
    build "aggprog.fleet"
      { cg_meta with Codegen.plans = wpa.Propeller.Wpa.plans }
      { ld_meta with Linker.Link.ordering = Some wpa.Propeller.Wpa.ordering }
  in
  let shards =
    [
      shard0;
      serve gen0.Buildsys.Driver.binary 1;
      serve gen1.Buildsys.Driver.binary 2;
      serve gen1.Buildsys.Driver.binary 3;
    ]
  in
  (gen0.Buildsys.Driver.binary, gen1.Buildsys.Driver.binary, shards, ctx, program)

let make_aggregate gen0 gen1 =
  let agg = Fleet.Aggregate.create ~window:2 ~decay:0.5 ~lbr_depth:32 () in
  Fleet.Aggregate.register agg gen0;
  Fleet.Aggregate.register agg gen1;
  agg

let test_aggregation_permutation_invariant () =
  let gen0, gen1, shards, _, _ = mixed_shards () in
  let target = Support.Digesting.to_hex (Linker.Binary.image_digest gen1) in
  let signature_of order =
    let agg = make_aggregate gen0 gen1 in
    Fleet.Aggregate.push agg ~round:1 order;
    let profile, stats = Fleet.Aggregate.merged agg ~target in
    check tb "stale shards translated" true (stats.Fleet.Aggregate.stale_shards > 0);
    Fleet.Aggregate.signature profile
  in
  let reference = signature_of shards in
  let law =
    QCheck.Test.make ~count:20 ~name:"shard aggregation is permutation-invariant"
      (QCheck.make (QCheck.Gen.shuffle_l shards))
      (fun order -> String.equal (signature_of order) reference)
  in
  QCheck.Test.check_exn law

let test_permuted_aggregate_relinks_same_image () =
  let gen0, gen1, shards, ctx, program = mixed_shards () in
  let target = Support.Digesting.to_hex (Linker.Binary.image_digest gen1) in
  let relink order =
    let agg = make_aggregate gen0 gen1 in
    Fleet.Aggregate.push agg ~round:1 order;
    let profile, _ = Fleet.Aggregate.merged agg ~target in
    let wpa = Propeller.Wpa.analyze ~ctx ~profile:(Propeller.Wpa.Lbr profile) ~binary:gen1 () in
    let cg_meta, ld_meta = Propeller.Pipeline.metadata_options in
    let env = Buildsys.Driver.make_env ~ctx () in
    let built =
      Buildsys.Driver.build env ~name:"aggprog.fleet" ~program
        ~codegen_options:{ cg_meta with Codegen.plans = wpa.Propeller.Wpa.plans }
        ~link_options:{ ld_meta with Linker.Link.ordering = Some wpa.Propeller.Wpa.ordering }
    in
    Support.Digesting.to_hex (Linker.Binary.image_digest built.Buildsys.Driver.binary)
  in
  check ts "reversed shard order relinks a byte-identical image" (relink shards)
    (relink (List.rev shards))

let test_decayed_shards_fade () =
  let gen0, gen1, shards, _, _ = mixed_shards () in
  let target = Support.Digesting.to_hex (Linker.Binary.image_digest gen1) in
  let agg = Fleet.Aggregate.create ~window:4 ~decay:0.5 ~lbr_depth:32 () in
  Fleet.Aggregate.register agg gen0;
  Fleet.Aggregate.register agg gen1;
  Fleet.Aggregate.push agg ~round:1 shards;
  let p1, _ = Fleet.Aggregate.merged agg ~target in
  (* Push empty newer rounds: the old round's weight halves each time,
     so its contribution decays toward zero instead of pinning the
     aggregate forever. *)
  Fleet.Aggregate.push agg ~round:2 [];
  Fleet.Aggregate.push agg ~round:3 [];
  let p2, _ = Fleet.Aggregate.merged agg ~target in
  check tb "decayed aggregate is strictly lighter" true
    (Perfmon.Lbr.branch_total p2 < Perfmon.Lbr.branch_total p1);
  check tb "decayed aggregate still nonempty at age 2" true
    (Perfmon.Lbr.branch_total p2 > 0)

let suite =
  [
    Alcotest.test_case "deterministic across jobs" `Quick test_deterministic_across_jobs;
    Alcotest.test_case "converges within two relinks" `Quick test_converges_within_two_relinks;
    Alcotest.test_case "sabotaged canary rolls back" `Quick test_sabotage_rolls_back;
    Alcotest.test_case "aggregation permutation-invariant" `Quick
      test_aggregation_permutation_invariant;
    Alcotest.test_case "permuted aggregate relinks same image" `Quick
      test_permuted_aggregate_relinks_same_image;
    Alcotest.test_case "decayed shards fade" `Quick test_decayed_shards_fade;
  ]

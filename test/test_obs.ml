open Testutil

(* --- Clock -------------------------------------------------------- *)

let test_clock () =
  let c = Obs.Clock.create () in
  check tf "starts at zero" 0.0 (Obs.Clock.now c);
  Obs.Clock.advance c 1.5;
  Obs.Clock.advance c 0.25;
  check tf "accumulates" 1.75 (Obs.Clock.now c);
  (try
     Obs.Clock.advance c (-1.0);
     Alcotest.fail "expected rejection of negative advance"
   with Invalid_argument _ -> ());
  Obs.Clock.reset c;
  check tf "reset" 0.0 (Obs.Clock.now c)

(* --- Spans -------------------------------------------------------- *)

let test_span_nesting () =
  let clk = Obs.Clock.create () in
  let t = Obs.Trace.create clk in
  Obs.Trace.with_span t "outer" (fun () ->
      Obs.Clock.advance clk 1.0;
      Obs.Trace.with_span t "inner_a" (fun () -> Obs.Clock.advance clk 2.0);
      Obs.Trace.with_span t "inner_b" (fun () -> Obs.Clock.advance clk 3.0));
  let spans = Obs.Trace.spans t in
  check ti "three spans" 3 (List.length spans);
  check (Alcotest.list ts) "parent precedes children in export order"
    [ "outer"; "inner_a"; "inner_b" ]
    (List.map (fun (s : Obs.Trace.span) -> s.name) spans);
  let find name = List.find (fun (s : Obs.Trace.span) -> s.name = name) spans in
  let outer = find "outer" and a = find "inner_a" and b = find "inner_b" in
  check ti "outer depth" 0 outer.depth;
  check ti "inner depth" 1 a.depth;
  check tf "outer covers the whole interval" 6.0 outer.duration;
  check tf "inner_a start" 1.0 a.start;
  check tf "inner_a duration" 2.0 a.duration;
  check tf "inner_b starts after inner_a" 3.0 b.start;
  check tb "children inside parent" true
    (a.start >= outer.start
    && b.start +. b.duration <= outer.start +. outer.duration)

let test_span_closed_on_exception () =
  let clk = Obs.Clock.create () in
  let t = Obs.Trace.create clk in
  (try
     Obs.Trace.with_span t "boom" (fun () ->
         Obs.Clock.advance clk 1.0;
         failwith "inner failure")
   with Failure _ -> ());
  match Obs.Trace.spans t with
  | [ s ] ->
    check ts "span closed despite raise" "boom" s.name;
    check tf "duration up to the raise" 1.0 s.duration
  | l -> Alcotest.failf "expected exactly one span, got %d" (List.length l)

(* --- Metrics ------------------------------------------------------ *)

let test_counter_accounting () =
  let m = Obs.Metrics.create () in
  check ti "unknown counter reads 0" 0 (Obs.Metrics.counter m "c");
  Obs.Metrics.incr_counter m "c";
  Obs.Metrics.add_counter m "c" 41;
  check ti "incr + add" 42 (Obs.Metrics.counter m "c");
  (try
     Obs.Metrics.add_counter m "c" (-1);
     Alcotest.fail "expected rejection of negative counter add"
   with Invalid_argument _ -> ());
  Obs.Metrics.set_gauge m "g" 2.5;
  Obs.Metrics.set_gauge m "g" 7.5;
  check (Alcotest.option tf) "gauge is last-write-wins" (Some 7.5)
    (Obs.Metrics.gauge m "g");
  Obs.Metrics.incr_counter m "b";
  check
    (Alcotest.list (Alcotest.pair ts ti))
    "counters sorted by name"
    [ ("b", 1); ("c", 42) ]
    (Obs.Metrics.counters m)

let test_histogram_summary () =
  let m = Obs.Metrics.create () in
  check tb "empty histogram has no summary" true
    (Obs.Metrics.summary m "h" = None);
  List.iter (Obs.Metrics.observe m "h") [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  match Obs.Metrics.summary m "h" with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
    check ti "count" 8 s.count;
    check tf "sum" 40.0 s.sum;
    check tf "mean" 5.0 s.mean;
    check tf "stddev" 2.0 s.stddev;
    check tf "min" 2.0 s.min;
    check tf "max" 9.0 s.max;
    check tf "median" 4.5 s.median

(* Interpolated percentiles are exact at tiny sample counts — the
   single-observation histograms phase timing produces must not report
   a zero or out-of-range p99. *)
let test_histogram_small_counts () =
  let summ vals =
    let m = Obs.Metrics.create () in
    List.iter (Obs.Metrics.observe m "h") vals;
    Option.get (Obs.Metrics.summary m "h")
  in
  let s1 = summ [ 7.0 ] in
  check tf "n=1 median" 7.0 s1.median;
  check tf "n=1 p90" 7.0 s1.p90;
  check tf "n=1 p99" 7.0 s1.p99;
  let s2 = summ [ 1.0; 2.0 ] in
  check tf "n=2 median interpolates" 1.5 s2.median;
  check tf "n=2 p90" 1.9 s2.p90;
  check tf "n=2 p99" 1.99 s2.p99;
  (* Support.Stats must agree byte-for-byte (two implementations, one
     contract — obs cannot depend on support). *)
  List.iter
    (fun (p, expect) ->
      check tf
        (Printf.sprintf "stats p%g agrees" p)
        expect
        (Support.Stats.percentile p [ 1.0; 2.0 ]))
    [ (50.0, 1.5); (90.0, 1.9); (99.0, 1.99) ]

(* --- Chrome trace export ------------------------------------------ *)

let test_chrome_trace_well_formed () =
  let r = Obs.Recorder.create () in
  Obs.Recorder.with_span r "build" (fun () ->
      Obs.Recorder.advance r 0.5;
      Obs.Recorder.with_span r "link" (fun () -> Obs.Recorder.advance r 0.25));
  Obs.Recorder.counter_sample r "cache" [ ("hits", 3.0); ("misses", 1.0) ];
  let text = Obs.Recorder.trace_json r in
  match Obs.Json.parse text with
  | Error e -> Alcotest.failf "exported trace does not re-parse: %s" e
  | Ok json -> (
    match Obs.Json.member "traceEvents" json with
    | Some (Obs.Json.List events) ->
      (* 2 spans + 1 counter sample. *)
      check ti "event count" 3 (List.length events);
      List.iter
        (fun ev ->
          let str_field f =
            match Obs.Json.member f ev with
            | Some (Obs.Json.String s) -> s
            | _ -> Alcotest.failf "event missing string field %S" f
          in
          let int_field f =
            match Obs.Json.member f ev with
            | Some (Obs.Json.Int i) -> i
            | _ -> Alcotest.failf "event missing int field %S" f
          in
          check tb "phase is X or C" true
            (match str_field "ph" with "X" -> true | "C" -> true | _ -> false);
          check tb "ts is non-negative microseconds" true (int_field "ts" >= 0);
          if str_field "ph" = "X" then
            check tb "complete events carry a duration" true (int_field "dur" >= 0))
        events;
      let link_events =
        List.filter
          (fun ev ->
            Obs.Json.member "name" ev = Some (Obs.Json.String "link"))
          events
      in
      (match link_events with
      | [ ev ] ->
        check tb "simulated timestamps survive the µs conversion" true
          (Obs.Json.member "ts" ev = Some (Obs.Json.Int 500_000)
          && Obs.Json.member "dur" ev = Some (Obs.Json.Int 250_000))
      | _ -> Alcotest.fail "expected exactly one link event")
    | _ -> Alcotest.fail "missing traceEvents array")

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a\"b\\c\n\t \xe2\x9c\x93");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5);
        ("l", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("o", Obs.Json.Obj []);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string v) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok v' ->
    check ts "round-trip preserves the tree" (Obs.Json.to_string v)
      (Obs.Json.to_string v');
    check tb "garbage is rejected" true
      (match Obs.Json.parse "{\"a\": }" with Error _ -> true | Ok _ -> false)

(* --- Determinism -------------------------------------------------- *)

(* Two identical pipeline runs against fresh recorders must export
   byte-identical metrics and traces: everything recorded is a function
   of the simulated cost models, never of wall-clock or iteration
   order. This is the property that makes telemetry diffable across
   hosts and CI runs. *)
let test_pipeline_telemetry_deterministic () =
  let one_run () =
    let spec, program = medium_program () in
    let recorder = Obs.Recorder.create () in
    let env = Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ()) () in
    let (_ : Propeller.Pipeline.result) =
      Propeller.Pipeline.run
        ~config:
          {
            Propeller.Pipeline.default_config with
            profile_run = { Exec.Interp.default_config with requests = spec.requests };
          }
        ~env ~program ~name:"testprog" ()
    in
    (Obs.Recorder.metrics_json recorder, Obs.Recorder.trace_json recorder)
  in
  let m1, t1 = one_run () in
  let m2, t2 = one_run () in
  check ts "metrics byte-identical" m1 m2;
  check ts "trace byte-identical" t1 t2;
  check tb "metrics export non-trivial" true (String.length m1 > 100);
  check tb "runs actually recorded phase spans" true
    (String.length t1 > 100)

let test_pipeline_phase_spans () =
  let spec, program = medium_program () in
  let recorder = Obs.Recorder.create () in
  let env = Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ()) () in
  let result =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests = spec.requests };
        }
      ~env ~program ~name:"testprog" ()
  in
  let trace = Obs.Recorder.trace recorder in
  let one name =
    match Obs.Trace.find_spans trace name with
    | [ s ] -> s
    | l -> Alcotest.failf "expected one %S span, got %d" name (List.length l)
  in
  let meta = one "phase:metadata_build" in
  let prof = one "phase:profiling" in
  let wpa = one "phase:wpa" in
  let opt = one "phase:optimized_build" in
  (* Span durations are the phase_times, on the same simulated clock. *)
  check tf "metadata span = phase time" result.times.metadata_build_s meta.duration;
  check tf "profiling span = load-test window" result.times.profiling_s prof.duration;
  check tf "wpa span = conversion time" result.times.conversion_s wpa.duration;
  check tf "optimize span = phase time" result.times.optimize_build_s opt.duration;
  check tb "phases are ordered on the clock" true
    (meta.start +. meta.duration <= prof.start
    && prof.start +. prof.duration <= wpa.start
    && wpa.start +. wpa.duration <= opt.start);
  (* Cache traffic of all three builds (baseline-less run: pm + po)
     lands in the env recorder's counters. *)
  let metrics = Obs.Recorder.metrics recorder in
  check ti "cache counters cover all units"
    (2 * List.length (Ir.Program.units program))
    (Obs.Metrics.counter metrics "buildsys.cache.hits"
    + Obs.Metrics.counter metrics "buildsys.cache.misses");
  check tb "some relaxation recorded" true
    (Obs.Metrics.counter metrics "linker.relax.iters" > 0)

let suite =
  [
    Alcotest.test_case "clock: simulated time" `Quick test_clock;
    Alcotest.test_case "trace: span nesting" `Quick test_span_nesting;
    Alcotest.test_case "trace: exception safety" `Quick test_span_closed_on_exception;
    Alcotest.test_case "metrics: counters and gauges" `Quick test_counter_accounting;
    Alcotest.test_case "metrics: histogram summary" `Quick test_histogram_summary;
    Alcotest.test_case "metrics: small-count percentiles" `Quick test_histogram_small_counts;
    Alcotest.test_case "trace: chrome JSON well-formed" `Quick test_chrome_trace_well_formed;
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "pipeline: telemetry deterministic" `Quick
      test_pipeline_telemetry_deterministic;
    Alcotest.test_case "pipeline: phase spans" `Quick test_pipeline_phase_spans;
  ]

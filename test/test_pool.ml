open Testutil

(* The domain pool's contract: identical results for any width, sane
   fan-out accounting, deterministic exception propagation, and safe
   nesting. *)

let test_empty_batch () =
  Support.Pool.with_pool ~jobs:4 (fun pool ->
      check ti "0 tasks -> empty array" 0 (Array.length (Support.Pool.map_array pool 0 Fun.id));
      check ti "map_list on [] is []" 0
        (List.length (Support.Pool.map_list pool Fun.id ([] : int list)));
      Support.Pool.parallel_iter pool ~n:0 (fun _ -> Alcotest.fail "task ran"))

let test_map_identical_across_jobs () =
  let n = 500 in
  let task i = (i * i) + (i mod 7) in
  let seq = Array.init n task in
  List.iter
    (fun jobs ->
      Support.Pool.with_pool ~jobs (fun pool ->
          let got = Support.Pool.map_array pool n task in
          check tb (Printf.sprintf "map_array jobs=%d matches sequential" jobs) true
            (got = seq)))
    [ 1; 2; 4; 8 ]

let test_map_reduce_index_order () =
  (* fold is non-commutative (list cons), so the final value proves the
     index-order commit. *)
  let n = 100 in
  let expected = List.init n (fun i -> i * 3) |> List.rev in
  List.iter
    (fun jobs ->
      Support.Pool.with_pool ~jobs (fun pool ->
          let got =
            Support.Pool.map_reduce pool ~n ~task:(fun i -> i * 3) ~init:[]
              ~fold:(fun acc x -> x :: acc)
          in
          check tb (Printf.sprintf "map_reduce jobs=%d in index order" jobs) true
            (got = expected)))
    [ 1; 4 ]

let test_parallel_iter_fills_slots () =
  Support.Pool.with_pool ~jobs:4 (fun pool ->
      let n = 257 in
      let slots = Array.make n (-1) in
      Support.Pool.parallel_iter pool ~n (fun i -> slots.(i) <- 2 * i);
      Array.iteri (fun i v -> check ti (Printf.sprintf "slot %d" i) (2 * i) v) slots)

let test_exception_lowest_index_wins () =
  Support.Pool.with_pool ~jobs:4 (fun pool ->
      match
        Support.Pool.map_array pool 100 (fun i ->
            if i mod 10 = 3 then failwith (Printf.sprintf "boom%d" i);
            i)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* Tasks 3, 13, 23, ... all raise; the batch must deterministically
           report the lowest raising index. *)
        check Alcotest.string "lowest-index exception" "boom3" msg)

let test_exception_pool_survives () =
  Support.Pool.with_pool ~jobs:2 (fun pool ->
      (try ignore (Support.Pool.map_array pool 10 (fun _ -> failwith "die"))
       with Failure _ -> ());
      let ok = Support.Pool.map_array pool 10 Fun.id in
      check tb "pool usable after a failed batch" true (ok = Array.init 10 Fun.id))

let test_nested_map_reduce () =
  Support.Pool.with_pool ~jobs:4 (fun pool ->
      (* Each outer task fans out again on the same pool; inner batches
         must run inline (no deadlock) and produce correct sums. *)
      let got =
        Support.Pool.map_array pool 8 (fun i ->
            Support.Pool.map_reduce pool ~n:10 ~task:(fun j -> (i * 10) + j) ~init:0
              ~fold:( + ))
      in
      let expected = Array.init 8 (fun i -> (i * 100) + 45) in
      check tb "nested batches correct" true (got = expected))

let test_jobs1_runs_inline_in_order () =
  Support.Pool.with_pool ~jobs:1 (fun pool ->
      let trail = ref [] in
      Support.Pool.parallel_iter pool ~n:20 (fun i -> trail := i :: !trail);
      check tb "jobs=1 executes 0..n-1 in order" true
        (List.rev !trail = List.init 20 Fun.id);
      let st = Support.Pool.stats pool in
      check ti "single worker lane" 1 (Array.length st.tasks_per_worker);
      check ti "no steals at jobs=1" 0 st.steals)

let test_stats_account_all_tasks () =
  Support.Pool.with_pool ~jobs:4 (fun pool ->
      Support.Pool.reset_stats pool;
      ignore (Support.Pool.map_array pool 300 Fun.id);
      let st = Support.Pool.stats pool in
      check ti "every task accounted to some worker" 300
        (Array.fold_left ( + ) 0 st.tasks_per_worker);
      check ti "one batch recorded" 1 st.batches;
      Support.Pool.reset_stats pool;
      let st = Support.Pool.stats pool in
      check ti "reset clears tasks" 0 (Array.fold_left ( + ) 0 st.tasks_per_worker))

let test_shutdown_idempotent () =
  let pool = Support.Pool.create ~jobs:3 () in
  ignore (Support.Pool.map_array pool 50 Fun.id);
  Support.Pool.shutdown pool;
  Support.Pool.shutdown pool;
  (* A shut-down pool degrades to inline sequential execution. *)
  let got = Support.Pool.map_array pool 5 (fun i -> i + 1) in
  check tb "post-shutdown batches run inline" true (got = [| 1; 2; 3; 4; 5 |])

let test_default_jobs_env_and_override () =
  let saved = Support.Pool.default_jobs () in
  Support.Pool.set_default_jobs 3;
  check ti "set_default_jobs visible" 3 (Support.Pool.default_jobs ());
  let pool = Support.Pool.global () in
  check ti "global pool tracks default" 3 (Support.Pool.jobs pool);
  (try
     Support.Pool.set_default_jobs 0;
     Alcotest.fail "jobs=0 accepted"
   with Invalid_argument _ -> ());
  Support.Pool.set_default_jobs saved

let suite =
  [
    Alcotest.test_case "empty batch" `Quick test_empty_batch;
    Alcotest.test_case "map identical across jobs" `Quick test_map_identical_across_jobs;
    Alcotest.test_case "map_reduce folds in index order" `Quick test_map_reduce_index_order;
    Alcotest.test_case "parallel_iter fills every slot" `Quick test_parallel_iter_fills_slots;
    Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index_wins;
    Alcotest.test_case "pool survives failed batch" `Quick test_exception_pool_survives;
    Alcotest.test_case "nested map_reduce is safe" `Quick test_nested_map_reduce;
    Alcotest.test_case "jobs=1 is the sequential path" `Quick test_jobs1_runs_inline_in_order;
    Alcotest.test_case "stats account all tasks" `Quick test_stats_account_all_tasks;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "default jobs plumbing" `Quick test_default_jobs_env_and_override;
  ]

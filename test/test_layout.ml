open Testutil

(* Random weighted digraph generator for property tests. *)
let graph_gen =
  QCheck.Gen.(
    sized_size (int_range 2 40) (fun n ->
        let* edge_count = int_range 0 (4 * n) in
        let* edges =
          list_repeat edge_count
            (let* s = int_bound (n - 1) in
             let* d = int_bound (n - 1) in
             let* w = float_bound_inclusive 100.0 in
             return (s, d, w))
        in
        let* sizes = array_repeat n (int_range 1 64) in
        let* weights = array_repeat n (float_bound_inclusive 50.0) in
        return (n, sizes, weights, edges)))

let graph_arb =
  QCheck.make
    ~print:(fun (n, _, _, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (s, d, w) -> Printf.sprintf "%d->%d:%.1f" s d w) edges)))
    graph_gen

let problem ?(entry = 0) (_, sizes, weights, edges) =
  Layout.Problem.make ~sizes ~weights ~edges ~entry

let is_permutation n order =
  List.length order = n && List.sort compare order = List.init n Fun.id

let exttsp_permutation_law =
  QCheck.Test.make ~count:150 ~name:"exttsp order is a permutation" graph_arb
    (fun ((n, _, _, _) as g) -> is_permutation n (Layout.Exttsp.order (problem g)))

let exttsp_entry_first_law =
  QCheck.Test.make ~count:150 ~name:"exttsp keeps the entry first" graph_arb
    (fun g ->
      match Layout.Exttsp.order (problem g) with 0 :: _ -> true | _ -> false)

(* Greedy Ext-TSP accumulates only positive merge gains, and its first
   merge captures at least the heaviest edge that can legally become a
   fall-through (an edge into the entry cannot, since the entry stays
   first). Note greedy does NOT dominate the identity layout in general
   — a counterexample exists with 4 nodes — so the sound lower bound is
   this one. *)
let exttsp_lower_bound_law =
  QCheck.Test.make ~count:150 ~name:"exttsp score >= heaviest realizable edge" graph_arb
    (fun ((_, _, _, edges) as g) ->
      let p = problem g in
      let order = Layout.Exttsp.order p in
      let s_opt = Layout.Exttsp.score ~order p in
      let best =
        List.fold_left
          (fun acc (s, d, w) -> if s <> d && d <> 0 then max acc w else acc)
          0.0 edges
      in
      s_opt >= best -. 1e-6)

let exttsp_pqueue_equals_linear_law =
  QCheck.Test.make ~count:80 ~name:"pqueue and linear retrieval agree" graph_arb
    (fun g ->
      let p1 = { Layout.Exttsp.default_params with use_pqueue = true } in
      let p2 = { Layout.Exttsp.default_params with use_pqueue = false } in
      Layout.Exttsp.order ~params:p1 (problem g) = Layout.Exttsp.order ~params:p2 (problem g))

let test_exttsp_chain () =
  (* A hot chain 0->1->2->3 must be laid out exactly in order. *)
  let sizes = [| 10; 10; 10; 10 |] in
  let weights = [| 1.0; 1.0; 1.0; 1.0 |] in
  let edges = [ (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0) ] in
  check Alcotest.(list int) "chain order" [ 0; 1; 2; 3 ]
    (Layout.Exttsp.order (Layout.Problem.make ~sizes ~weights ~edges ~entry:0))

let test_exttsp_hot_fallthrough () =
  (* Diamond where the taken side is hot: 0 -> 1 (hot), 0 -> 2 (cold),
     both -> 3. The hot successor must be adjacent to 0. *)
  let sizes = [| 10; 10; 10; 10 |] in
  let weights = [| 100.0; 95.0; 5.0; 100.0 |] in
  let edges = [ (0, 1, 95.0); (0, 2, 5.0); (1, 3, 95.0); (2, 3, 5.0) ] in
  match Layout.Exttsp.order (Layout.Problem.make ~sizes ~weights ~edges ~entry:0) with
  | 0 :: 1 :: _ -> ()
  | order ->
    Alcotest.failf "hot path not adjacent: %s"
      (String.concat "," (List.map string_of_int order))

let test_exttsp_singleton () =
  check Alcotest.(list int) "single node" [ 0 ]
    (Layout.Exttsp.order
       (Layout.Problem.make ~sizes:[| 8 |] ~weights:[| 1.0 |] ~edges:[] ~entry:0));
  check Alcotest.(list int) "empty" []
    (Layout.Exttsp.order (Layout.Problem.make ~sizes:[||] ~weights:[||] ~edges:[] ~entry:0))

let score_problem ~sizes ~edges =
  Layout.Problem.make ~sizes ~weights:(Array.make (Array.length sizes) 0.0) ~edges ~entry:0

let test_exttsp_score_fallthrough_beats_jump () =
  let p = score_problem ~sizes:[| 10; 10 |] ~edges:[ (0, 1, 10.0) ] in
  let s_ft = Layout.Exttsp.score ~order:[ 0; 1 ] p in
  let s_back = Layout.Exttsp.score ~order:[ 1; 0 ] p in
  check tb "fallthrough scores higher" true (s_ft > s_back);
  check tb "fallthrough full weight" true (abs_float (s_ft -. 10.0) < 1e-9)

let test_exttsp_window_decay () =
  (* A forward jump beyond the 1024-byte window scores zero. *)
  let edges = [ (0, 2, 10.0) ] in
  let s = Layout.Exttsp.score ~order:[ 0; 1; 2 ] (score_problem ~sizes:[| 10; 2000; 10 |] ~edges) in
  check tb "out of window = 0" true (s < 1e-9);
  (* Within the window it is positive but less than a fallthrough. *)
  let s2 = Layout.Exttsp.score ~order:[ 0; 1; 2 ] (score_problem ~sizes:[| 10; 100; 10 |] ~edges) in
  check tb "in window positive" true (s2 > 0.0 && s2 < 10.0)

let test_exttsp_merge_count () =
  let sizes = [| 10; 10; 10 |] in
  let weights = [| 1.0; 1.0; 1.0 |] in
  let edges = [ (0, 1, 5.0); (1, 2, 5.0) ] in
  ignore (Layout.Exttsp.order (Layout.Problem.make ~sizes ~weights ~edges ~entry:0));
  check ti "two merges for a 3-chain" 2 (Layout.Exttsp.last_merge_count ())

(* --- policy registry (ISSUE 10) ----------------------------------- *)

(* Every registered policy — including the stochastic ones — must
   return a valid permutation with the entry pinned first, for
   arbitrary problems. This is the contract the relink pipeline relies
   on when the user picks a policy by name. *)
let policy_contract_law =
  QCheck.Test.make ~count:60 ~name:"every policy yields an entry-first permutation" graph_arb
    (fun ((n, _, _, _) as g) ->
      List.for_all
        (fun (pol : Layout.Policy.t) ->
          let order = pol.order (problem g) in
          is_permutation n order && List.hd order = 0)
        (Layout.Policy.all ()))

let policy_nonzero_entry_law =
  QCheck.Test.make ~count:60 ~name:"policies pin a non-zero entry" graph_arb
    (fun ((n, _, _, _) as g) ->
      let entry = n - 1 in
      List.for_all
        (fun (pol : Layout.Policy.t) ->
          let order = pol.order (problem ~entry g) in
          is_permutation n order && List.hd order = entry)
        (Layout.Policy.all ()))

(* local-search starts from the Ext-TSP layout and only accepts strict
   improvements, so it can never score below its seed. *)
let local_search_dominates_law =
  QCheck.Test.make ~count:40 ~name:"local-search never scores below exttsp" graph_arb
    (fun g ->
      let p = problem g in
      let ls = Option.get (Layout.Policy.find "local-search") in
      let s_ls = Layout.Exttsp.score ~order:(ls.order p) p in
      let s_tsp = Layout.Exttsp.score ~order:(Layout.Exttsp.order p) p in
      s_ls >= s_tsp -. 1e-9)

let test_policy_registry () =
  let names = Layout.Policy.names () in
  List.iter
    (fun n -> check tb (n ^ " registered") true (List.mem n names))
    [ "exttsp"; "exttsp-linear"; "callchain"; "greedy"; "hillclimb"; "local-search" ];
  check tb "unknown policy rejected" true (Layout.Policy.find "no-such-policy" = None);
  (* The default policy resolves to the same ordering function the
     Ext-TSP module exports. *)
  let g = (4, [| 10; 10; 10; 10 |], [| 1.0; 1.0; 1.0; 1.0 |], [ (0, 1, 9.0); (1, 2, 9.0) ]) in
  let p = problem g in
  let pol = Option.get (Layout.Policy.find "exttsp") in
  check Alcotest.(list int) "exttsp policy = Exttsp.order" (Layout.Exttsp.order p) (pol.order p)

(* --- search harness (ISSUE 10) ------------------------------------ *)

(* Synthetic deterministic evaluator: fitness is a pure function of the
   candidate, proxy is perfectly concordant (higher proxy <=> fewer
   cycles). *)
let synth_eval (c : Layout.Search.candidate) =
  let h =
    Hashtbl.hash
      ( c.policy,
        c.params.Layout.Policy.seed,
        c.params.steps,
        c.params.exttsp.Layout.Exttsp.forward_window,
        c.params.exttsp.Layout.Exttsp.max_split_chain,
        int_of_float (c.params.exttsp.Layout.Exttsp.forward_weight *. 1000.0) )
  in
  let fitness = float_of_int (1000 + (h mod 997)) in
  { Layout.Search.fitness; proxy = 1.0e6 /. fitness }

let test_search_reproducible () =
  let run () = Layout.Search.run ~seed:7 ~budget:20 ~evaluate:synth_eval () in
  let a = run () and b = run () in
  check ti "same evaluation count" (List.length a.entries) (List.length b.entries);
  check ts "same winner policy" a.winner.candidate.policy b.winner.candidate.policy;
  check ti "same winner id" a.winner.id b.winner.id;
  check tb "same entries" true
    (List.for_all2
       (fun (x : Layout.Search.entry) (y : Layout.Search.entry) ->
         x.candidate = y.candidate && x.outcome = y.outcome && x.round = y.round)
       a.entries b.entries)

let test_search_budget_and_baseline () =
  let r = Layout.Search.run ~seed:3 ~budget:11 ~evaluate:synth_eval () in
  check ti "budget respected exactly" 11 (List.length r.entries);
  (match r.baseline with
  | None -> Alcotest.fail "no exttsp baseline entry"
  | Some b ->
    check ts "baseline is exttsp" "exttsp" b.candidate.policy;
    check ti "baseline in opening round" 0 b.round);
  (* The winner is the minimum-fitness entry. *)
  List.iter
    (fun (e : Layout.Search.entry) ->
      check tb "winner minimal" true (r.winner.outcome.fitness <= e.outcome.fitness))
    r.entries;
  (* Opening round covers every registered policy (budget permitting). *)
  let opening = List.filter (fun (e : Layout.Search.entry) -> e.round = 0) r.entries in
  check ti "opening = all policies" (List.length (Layout.Policy.names ())) (List.length opening)

let test_search_tiny_budget () =
  let r = Layout.Search.run ~seed:1 ~budget:2 ~evaluate:synth_eval () in
  check ti "clipped opening round" 2 (List.length r.entries)

let test_search_proxy_agreement () =
  (* Concordant synthetic evaluator: agreement is exactly 1. *)
  let r = Layout.Search.run ~seed:5 ~budget:12 ~evaluate:synth_eval () in
  check tb "comparable pairs exist" true (r.comparable_pairs > 0);
  check ti "no discordance" 0 r.discordant_pairs;
  check tb "full agreement" true (r.proxy_agreement = 1.0);
  (* Anti-concordant evaluator (proxy = fitness): every comparable pair
     disagrees, agreement collapses to 0. *)
  let bad c =
    let { Layout.Search.fitness; _ } = synth_eval c in
    { Layout.Search.fitness; proxy = fitness }
  in
  let r2 = Layout.Search.run ~seed:5 ~budget:12 ~evaluate:bad () in
  check ti "all pairs discordant" r2.comparable_pairs r2.discordant_pairs;
  check tb "zero agreement" true (r2.proxy_agreement = 0.0)

(* --- hfsort ------------------------------------------------------- *)

let fproblem ~sizes ~samples ~arcs =
  Layout.Problem.make ~sizes ~weights:samples ~edges:arcs ~entry:0

let test_hfsort_permutation () =
  let sizes = [| 100; 200; 300; 50 |] in
  let samples = [| 10.0; 500.0; 1.0; 300.0 |] in
  let arcs = [ (1, 3, 100.0); (3, 0, 10.0) ] in
  let order = Layout.Hfsort.order (fproblem ~sizes ~samples ~arcs) in
  check tb "permutation" true (is_permutation 4 order)

let test_hfsort_caller_callee_adjacent () =
  let sizes = [| 100; 100; 100; 100 |] in
  let samples = [| 1000.0; 900.0; 1.0; 2.0 |] in
  let arcs = [ (0, 1, 500.0) ] in
  let order = Layout.Hfsort.order (fproblem ~sizes ~samples ~arcs) in
  let pos f = Option.get (List.find_index (fun x -> x = f) order) in
  check ti "callee right after caller" (pos 0 + 1) (pos 1)

let test_hfsort_density_order () =
  (* No arcs: order by hotness density. *)
  let sizes = [| 1000; 10; 100 |] in
  let samples = [| 100.0; 100.0; 100.0 |] in
  let order = Layout.Hfsort.order (fproblem ~sizes ~samples ~arcs:[]) in
  check Alcotest.(list int) "densest first" [ 1; 2; 0 ] order

let test_hfsort_cluster_cap () =
  (* Merging stops at the size cap, so the callee ends up placed by
     density rather than appended. *)
  let sizes = [| 900; 900 |] in
  let samples = [| 100.0; 50.0 |] in
  let arcs = [ (0, 1, 100.0) ] in
  let order = Layout.Hfsort.order ~max_cluster_size:1000 (fproblem ~sizes ~samples ~arcs) in
  check tb "still a permutation" true (is_permutation 2 order)

let hfsort_permutation_law =
  QCheck.Test.make ~count:150 ~name:"hfsort is a permutation"
    QCheck.(
      make
        Gen.(
          sized_size (int_range 1 30) (fun n ->
              let* sizes = array_repeat n (int_range 1 5000) in
              let* samples = array_repeat n (float_bound_inclusive 1000.0) in
              let* arc_count = int_range 0 (2 * n) in
              let* arcs =
                list_repeat arc_count
                  (let* s = int_bound (n - 1) in
                   let* d = int_bound (n - 1) in
                   let* w = float_bound_inclusive 100.0 in
                   return (s, d, w))
              in
              return (n, sizes, samples, arcs))))
    (fun (n, sizes, samples, arcs) ->
      is_permutation n (Layout.Hfsort.order (fproblem ~sizes ~samples ~arcs)))

(* --- split -------------------------------------------------------- *)

let test_split_partition () =
  let counts = [| 10.0; 0.0; 5.0; 0.0 |] in
  let { Layout.Split.hot; cold } = Layout.Split.partition ~counts () in
  check Alcotest.(list int) "hot" [ 0; 2 ] hot;
  check Alcotest.(list int) "cold" [ 1; 3 ] cold

let test_split_entry_always_hot () =
  let counts = [| 0.0; 7.0 |] in
  let { Layout.Split.hot; _ } = Layout.Split.partition ~counts () in
  check tb "entry hot even at zero count" true (List.mem 0 hot)

let test_split_threshold () =
  let counts = [| 100.0; 3.0; 50.0 |] in
  let { Layout.Split.cold; _ } = Layout.Split.partition ~counts ~threshold:5.0 () in
  check Alcotest.(list int) "below threshold is cold" [ 1 ] cold

let test_call_split_heuristic () =
  check tb "small region not profitable" false
    (Layout.Split.call_split_profitable ~cold_bytes:10 ~entry_count:100.0 ~cold_entry_count:0.0);
  check tb "large cold region profitable" true
    (Layout.Split.call_split_profitable ~cold_bytes:500 ~entry_count:100.0 ~cold_entry_count:0.0);
  check tb "frequently-entered region not profitable" false
    (Layout.Split.call_split_profitable ~cold_bytes:500 ~entry_count:100.0 ~cold_entry_count:50.0)

let suite =
  [
    QCheck_alcotest.to_alcotest exttsp_permutation_law;
    QCheck_alcotest.to_alcotest exttsp_entry_first_law;
    QCheck_alcotest.to_alcotest exttsp_lower_bound_law;
    QCheck_alcotest.to_alcotest exttsp_pqueue_equals_linear_law;
    Alcotest.test_case "exttsp: hot chain" `Quick test_exttsp_chain;
    Alcotest.test_case "exttsp: hot fallthrough wins" `Quick test_exttsp_hot_fallthrough;
    Alcotest.test_case "exttsp: degenerate inputs" `Quick test_exttsp_singleton;
    Alcotest.test_case "exttsp: fallthrough scoring" `Quick test_exttsp_score_fallthrough_beats_jump;
    Alcotest.test_case "exttsp: distance windows" `Quick test_exttsp_window_decay;
    Alcotest.test_case "exttsp: merge count" `Quick test_exttsp_merge_count;
    QCheck_alcotest.to_alcotest policy_contract_law;
    QCheck_alcotest.to_alcotest policy_nonzero_entry_law;
    QCheck_alcotest.to_alcotest local_search_dominates_law;
    Alcotest.test_case "policy: registry" `Quick test_policy_registry;
    Alcotest.test_case "search: reproducible" `Quick test_search_reproducible;
    Alcotest.test_case "search: budget and baseline" `Quick test_search_budget_and_baseline;
    Alcotest.test_case "search: tiny budget" `Quick test_search_tiny_budget;
    Alcotest.test_case "search: proxy agreement" `Quick test_search_proxy_agreement;
    Alcotest.test_case "hfsort: permutation" `Quick test_hfsort_permutation;
    Alcotest.test_case "hfsort: caller/callee adjacency" `Quick test_hfsort_caller_callee_adjacent;
    Alcotest.test_case "hfsort: density order" `Quick test_hfsort_density_order;
    Alcotest.test_case "hfsort: cluster cap" `Quick test_hfsort_cluster_cap;
    QCheck_alcotest.to_alcotest hfsort_permutation_law;
    Alcotest.test_case "split: partition" `Quick test_split_partition;
    Alcotest.test_case "split: entry hot" `Quick test_split_entry_always_hot;
    Alcotest.test_case "split: threshold" `Quick test_split_threshold;
    Alcotest.test_case "split: call heuristic" `Quick test_call_split_heuristic;
  ]
